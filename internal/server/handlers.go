package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/query"
	"repro/internal/relevance"
)

// registerRequest is the body of POST /v1/databases.
type registerRequest struct {
	// ID optionally names the registration; generated when empty.
	ID string `json:"id,omitempty"`
	// Text is the database in the textual format ("exo R(a)" / "endo S(b)"
	// lines).
	Text string `json:"text"`
}

// databaseInfo describes a registered database.
type databaseInfo struct {
	ID          string    `json:"id"`
	Fingerprint string    `json:"fingerprint"`
	Facts       int       `json:"facts"`
	Endogenous  int       `json:"endogenous"`
	Exogenous   int       `json:"exogenous"`
	Relations   []string  `json:"relations"`
	Created     time.Time `json:"created"`
}

func (rdb *registeredDB) info() databaseInfo {
	endo := rdb.d.NumEndo()
	return databaseInfo{
		ID:          rdb.id,
		Fingerprint: rdb.fingerprint,
		Facts:       rdb.d.NumFacts(),
		Endogenous:  endo,
		Exogenous:   rdb.d.NumFacts() - endo,
		Relations:   rdb.d.Relations(),
		Created:     rdb.created,
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "missing database text")
		return
	}
	// "." and ".." survive registration but are unreachable afterwards:
	// ServeMux path-cleaning redirects /v1/databases/../... away before
	// route matching ever sees the id.
	if strings.ContainsAny(req.ID, "/ \t\n") || req.ID == "." || req.ID == ".." {
		writeError(w, http.StatusBadRequest, "bad_request", "database id must not contain slashes, whitespace or be a dot segment")
		return
	}
	d, err := db.Parse(req.Text)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	s.mu.Lock()
	id := req.ID
	if id == "" {
		// Generated ids must not displace an explicitly registered database
		// that happens to be named like one.
		for {
			s.seq++
			id = fmt.Sprintf("db-%d", s.seq)
			if _, taken := s.dbs[id]; !taken {
				break
			}
		}
	} else if _, exists := s.dbs[id]; exists {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "conflict", fmt.Sprintf("database %q is already registered", id))
		return
	}
	rdb := &registeredDB{id: id, fingerprint: d.Fingerprint(), d: d, created: time.Now()}
	s.dbs[id] = rdb
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, rdb.info())
}

func (s *Server) handleListDatabases(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]databaseInfo, 0, len(s.dbs))
	for _, rdb := range s.dbs {
		infos = append(infos, rdb.info())
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"databases": infos})
}

func (s *Server) handleGetDatabase(w http.ResponseWriter, r *http.Request) {
	rdb, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no database %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, rdb.info())
}

func (s *Server) handleDeleteDatabase(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	rdb, ok := s.dbs[id]
	if ok {
		delete(s.dbs, id)
	}
	// Drop the deregistered database's cached plans unless another
	// registration shares the fingerprint (plans are keyed by content, so
	// they remain valid for the surviving alias).
	shared := false
	if ok {
		for _, other := range s.dbs {
			if other.fingerprint == rdb.fingerprint {
				shared = true
				break
			}
		}
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no database %q", id))
		return
	}
	if !shared {
		prefix := rdb.fingerprint + "\x00"
		s.plans.RemoveIf(func(key string) bool { return strings.HasPrefix(key, prefix) })
	}
	w.WriteHeader(http.StatusNoContent)
}

// shapleyRequest is the body of POST /v1/databases/{id}/shapley.
type shapleyRequest struct {
	// Query is a CQ¬ in rule syntax, or a UCQ¬ with '|' between disjuncts.
	Query string `json:"query"`
	// Fact selects single-fact mode, e.g. "TA(Adam)".
	Fact string `json:"fact,omitempty"`
	// Mode "all" computes every endogenous fact; default is single-fact.
	Mode string `json:"mode,omitempty"`
	// Workers overrides the server's worker-pool size for this request.
	Workers int `json:"workers,omitempty"`
	// Exo declares schema-level exogenous relations (the set X of §4).
	Exo []string `json:"exo,omitempty"`
	// BruteForce permits exponential enumeration on intractable queries.
	BruteForce bool `json:"brute_force,omitempty"`
	// Rank sorts mode=all output by descending value (the CLI's -all table
	// order) instead of database order.
	Rank bool `json:"rank,omitempty"`
}

// shapleyResponse is the result schema shared (via ValueJSON) with the
// CLI's -json output.
type shapleyResponse struct {
	Database string     `json:"database"`
	Query    string     `json:"query"`
	Method   string     `json:"method"`
	Cache    string     `json:"cache"` // "hit" | "miss"
	Value    *ValueJSON `json:"value,omitempty"`
	// omitzero (not omitempty): a mode=all answer over a database with no
	// endogenous facts must serialize as "values": [], while single-fact
	// responses (nil slice) omit the key.
	Values []ValueJSON `json:"values,omitzero"`
}

func (s *Server) handleShapley(w http.ResponseWriter, r *http.Request) {
	rdb, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no database %q", r.PathValue("id")))
		return
	}
	var req shapleyRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	pq, err := parseRequestQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if req.Mode != "" && req.Mode != "all" {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown mode %q (want \"\" or \"all\")", req.Mode))
		return
	}
	if req.Mode == "" && req.Fact == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "single-fact mode needs \"fact\"; pass \"mode\": \"all\" for every endogenous fact")
		return
	}
	if req.Mode == "all" && req.Fact != "" {
		// Mirror the CLI's "-all ranks every endogenous fact; drop -fact".
		writeError(w, http.StatusBadRequest, "bad_request", "mode \"all\" computes every endogenous fact; drop \"fact\"")
		return
	}
	// Parse the fact before preparing: a malformed fact must not cost (or
	// cache) a full plan preparation.
	var f db.Fact
	if req.Mode == "" {
		var err error
		if f, err = db.ParseFact(req.Fact); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
	}
	prepared, hit, err := s.preparedFor(rdb, pq, req.Exo, req.BruteForce)
	if err != nil {
		writeSolverError(w, err)
		return
	}
	cache := "miss"
	if hit {
		cache = "hit"
	}
	w.Header().Set("X-Cache", cache)
	resp := shapleyResponse{
		Database: rdb.id,
		Query:    pq.canonical,
		Method:   prepared.Method().String(),
		Cache:    cache,
	}

	if req.Mode == "all" {
		workers := req.Workers
		if workers <= 0 {
			workers = s.opts.Workers
		}
		vals, err := prepared.ShapleyAll(core.BatchOptions{Workers: workers})
		if err != nil {
			writeSolverError(w, err)
			return
		}
		s.met.valuesComputed.Add(int64(len(vals)))
		if req.Rank {
			resp.Values = RankValues(vals)
		} else {
			resp.Values = EncodeValues(vals)
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	v, err := prepared.Shapley(f)
	if err != nil {
		writeSolverError(w, err)
		return
	}
	s.met.valuesComputed.Add(1)
	ev := EncodeValue(v)
	resp.Value = &ev
	writeJSON(w, http.StatusOK, resp)
}

// classifyRequest is the body of POST /v1/databases/{id}/classify.
type classifyRequest struct {
	Query string   `json:"query"`
	Exo   []string `json:"exo,omitempty"`
}

// classifyResponse mirrors core.Classification plus a human verdict.
type classifyResponse struct {
	Query              string `json:"query"`
	SelfJoinFree       bool   `json:"self_join_free"`
	Hierarchical       bool   `json:"hierarchical"`
	PolarityConsistent bool   `json:"polarity_consistent"`
	HasNonHierPath     bool   `json:"has_non_hierarchical_path"`
	PathWitness        string `json:"path_witness,omitempty"`
	Tractable          bool   `json:"tractable"`
	Verdict            string `json:"verdict"`
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.lookup(r.PathValue("id")); !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no database %q", r.PathValue("id")))
		return
	}
	var req classifyRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	pq, err := parseRequestQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if pq.cq == nil {
		writeError(w, http.StatusBadRequest, "bad_request", "classification applies to a single CQ¬, not a union")
		return
	}
	exoRels, err := exoSet(req.Exo)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	c := core.Classify(pq.cq, exoRels)
	resp := classifyResponse{
		Query:              pq.canonical,
		SelfJoinFree:       c.SelfJoinFree,
		Hierarchical:       c.Hierarchical,
		PolarityConsistent: c.PolarityConsistent,
		HasNonHierPath:     c.HasNonHierPath,
		Tractable:          c.Tractable,
	}
	if c.PathWitness != nil {
		resp.PathWitness = fmt.Sprintf("%s→%s via %v", c.PathWitness.X, c.PathWitness.Y, c.PathWitness.Path)
	}
	if c.Tractable {
		resp.Verdict = "exact Shapley computation is polynomial (Theorems 3.1/4.3)"
	} else {
		resp.Verdict = "exact Shapley computation is FP#P-complete (Theorems 3.1/4.3)"
	}
	writeJSON(w, http.StatusOK, resp)
}

// relevanceRequest is the body of POST /v1/databases/{id}/relevance.
type relevanceRequest struct {
	Query      string `json:"query"`
	Fact       string `json:"fact"`
	BruteForce bool   `json:"brute_force,omitempty"`
}

type relevanceResponse struct {
	Fact     string `json:"fact"`
	Relevant bool   `json:"relevant"`
	Method   string `json:"method"` // "polynomial" | "brute-force"
}

func (s *Server) handleRelevance(w http.ResponseWriter, r *http.Request) {
	rdb, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no database %q", r.PathValue("id")))
		return
	}
	var req relevanceRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	pq, err := parseRequestQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	f, err := db.ParseFact(req.Fact)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	var (
		rel    bool
		method = "polynomial"
	)
	switch {
	case pq.cq != nil && pq.cq.IsPolarityConsistent():
		rel, err = relevance.IsRelevant(rdb.d, pq.cq, f)
	case pq.ucq != nil && pq.ucq.IsPolarityConsistent():
		rel, err = relevance.IsRelevantUCQ(rdb.d, pq.ucq, f)
	case req.BruteForce:
		method = "brute-force"
		rel, err = relevance.IsRelevantBrute(rdb.d, boolQuery(pq), f)
	default:
		err = fmt.Errorf("%w: %s (set brute_force for the exponential check)", relevance.ErrNotPolarityConsistent, pq.canonical)
	}
	if err != nil {
		writeSolverError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, relevanceResponse{Fact: f.Key(), Relevant: rel, Method: method})
}

// approxRequest is the body of POST /v1/databases/{id}/approx.
type approxRequest struct {
	Query string `json:"query"`
	Fact  string `json:"fact"`
	// Eps and Delta select the additive (ε, δ)-approximation of §5.1;
	// defaults 0.1 and 0.05.
	Eps   float64 `json:"eps,omitempty"`
	Delta float64 `json:"delta,omitempty"`
	// Samples, when positive, fixes the permutation count directly and
	// overrides eps/delta.
	Samples int `json:"samples,omitempty"`
	// Seed makes the estimate reproducible; default 1.
	Seed int64 `json:"seed,omitempty"`
}

type approxResponse struct {
	Fact     string  `json:"fact"`
	Estimate float64 `json:"estimate"`
	Samples  int     `json:"samples"`
	Eps      float64 `json:"eps,omitempty"`
	Delta    float64 `json:"delta,omitempty"`
	Seed     int64   `json:"seed"`
}

func (s *Server) handleApprox(w http.ResponseWriter, r *http.Request) {
	rdb, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no database %q", r.PathValue("id")))
		return
	}
	var req approxRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	pq, err := parseRequestQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	f, err := db.ParseFact(req.Fact)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if req.Eps == 0 {
		req.Eps = 0.1
	}
	if req.Delta == 0 {
		req.Delta = 0.05
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	rng := rand.New(rand.NewSource(req.Seed))
	var res core.MCResult
	if req.Samples > 0 {
		res, err = core.MonteCarloShapleyN(rdb.d, boolQuery(pq), f, req.Samples, rng)
		req.Eps, req.Delta = 0, 0
	} else {
		res, err = core.MonteCarloShapley(rdb.d, boolQuery(pq), f, req.Eps, req.Delta, rng)
	}
	if err != nil {
		writeSolverError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, approxResponse{
		Fact:     f.Key(),
		Estimate: res.Estimate,
		Samples:  res.Samples,
		Eps:      req.Eps,
		Delta:    req.Delta,
		Seed:     req.Seed,
	})
}

// boolQuery returns the request query as the evaluation interface.
func boolQuery(pq parsedQuery) query.BooleanQuery {
	if pq.cq != nil {
		return pq.cq
	}
	return pq.ucq
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.dbs)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"databases":      n,
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}
