package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/relevance"
)

// traceFor finishes and returns the request's span recording, or nil when
// the request did not opt in with ?trace=1 (the nil is omitted from JSON
// bodies). Handlers call it once, immediately before encoding the
// response, so the root span covers everything but the final encode.
func traceFor(ctx context.Context) *obs.Trace {
	rec := obs.RecorderFrom(ctx)
	if rec == nil {
		return nil
	}
	return rec.Finish()
}

// registerRequest is the body of POST /v1/databases.
type registerRequest struct {
	// ID optionally names the registration; generated when empty.
	ID string `json:"id,omitempty"`
	// Text is the database in the textual format ("exo R(a)" / "endo S(b)"
	// lines).
	Text string `json:"text"`
}

// databaseInfo describes a registered database. Version starts at 1 and
// increases by one per applied (non-empty) PATCH delta.
type databaseInfo struct {
	ID          string     `json:"id"`
	Version     db.Version `json:"version"`
	Fingerprint string     `json:"fingerprint"`
	Facts       int        `json:"facts"`
	Endogenous  int        `json:"endogenous"`
	Exogenous   int        `json:"exogenous"`
	Relations   []string   `json:"relations"`
	Created     time.Time  `json:"created"`
}

func (snap dbSnapshot) info() databaseInfo {
	endo := snap.d.NumEndo()
	return databaseInfo{
		ID:          snap.id,
		Version:     snap.version,
		Fingerprint: snap.fingerprint,
		Facts:       snap.d.NumFacts(),
		Endogenous:  endo,
		Exogenous:   snap.d.NumFacts() - endo,
		Relations:   snap.d.Relations(),
		Created:     snap.created,
	}
}

// snap converts the registered database to its consistent view; callers
// hold the server mutex.
func (rdb *registeredDB) snap() dbSnapshot {
	return dbSnapshot{
		id:          rdb.id,
		gen:         rdb.gen,
		fingerprint: rdb.fingerprint,
		d:           rdb.d,
		version:     rdb.version,
		created:     rdb.created,
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "missing database text")
		return
	}
	if err := validateDatabaseID(req.ID); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	d, err := db.Parse(req.Text)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	s.mu.Lock()
	id := req.ID
	if id == "" {
		// Generated ids must not displace an explicitly registered database
		// that happens to be named like one.
		for {
			s.seq++
			id = fmt.Sprintf("db-%d", s.seq)
			if _, taken := s.dbs[id]; !taken {
				break
			}
		}
	} else if _, exists := s.dbs[id]; exists {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "conflict", fmt.Sprintf("database %q is already registered", id))
		return
	}
	s.gens++
	rdb := &registeredDB{id: id, gen: s.gens, fingerprint: d.Fingerprint(), d: d, version: 1, created: time.Now()}
	s.dbs[id] = rdb
	snap := rdb.snap()
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, snap.info())
}

func (s *Server) handleListDatabases(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]databaseInfo, 0, len(s.dbs))
	for _, rdb := range s.dbs {
		infos = append(infos, rdb.snap().info())
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"databases": infos})
}

func (s *Server) handleGetDatabase(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no database %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, snap.info())
}

// patchRequest is the body of PATCH /v1/databases/{id}: a fact delta.
// Removals apply before insertions, so a fact can flip endogeneity in one
// delta by appearing in both remove and one of the add lists.
type patchRequest struct {
	AddEndo []string `json:"add_endo,omitempty"`
	AddExo  []string `json:"add_exo,omitempty"`
	Remove  []string `json:"remove,omitempty"`
}

// patchResponse reports the post-delta database plus what happened to its
// cached plans: patched in place versus dropped (a plan is dropped when
// the delta makes it unservable, e.g. an endogenous fact added to a
// relation the plan declared exogenous).
type patchResponse struct {
	databaseInfo
	PlansPatched int `json:"plans_patched"`
	PlansDropped int `json:"plans_dropped"`
	// Trace is the request's span tree (one plan.apply span per patched
	// plan), present only with ?trace=1.
	Trace *obs.Trace `json:"trace,omitempty"`
}

func (s *Server) handlePatchDatabase(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req patchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	parseFacts := func(in []string) ([]db.Fact, error) {
		out := make([]db.Fact, 0, len(in))
		for _, s := range in {
			f, err := db.ParseFact(s)
			if err != nil {
				return nil, err
			}
			out = append(out, f)
		}
		return out, nil
	}
	var (
		delta db.Delta
		err   error
	)
	if delta.AddEndo, err = parseFacts(req.AddEndo); err == nil {
		if delta.AddExo, err = parseFacts(req.AddExo); err == nil {
			delta.Remove, err = parseFacts(req.Remove)
		}
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	s.mu.Lock()
	rdb, ok := s.dbs[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no database %q", id))
		return
	}
	if delta.Empty() {
		// The no-op delta keeps the version, mirroring Plan.Apply.
		resp := patchResponse{databaseInfo: rdb.snap().info()}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	newD, err := rdb.d.Apply(delta)
	if err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusBadRequest, "bad_delta", err.Error())
		return
	}
	oldVersion := rdb.version
	rdb.d = newD
	rdb.version++
	rdb.fingerprint = newD.Fingerprint()
	newVersion := rdb.version
	gen := rdb.gen
	resp := patchResponse{databaseInfo: rdb.snap().info()}
	s.mu.Unlock()

	// Patch every cached plan of this database in place: Plan.Apply
	// recomputes only the DP buckets the delta touches and the entry keeps
	// serving warm requests at the new version. The sweep runs outside the
	// server lock (readers keep flowing; patchMu serializes sweeps with
	// each other), with the client's cancellation detached — the version
	// bump above is already committed, so a disconnect must not turn
	// healthy plans into evictions. Peek keeps the bookkeeping out of the
	// LRU ordering and the hit/miss counters.
	//
	// This delta only advances entries answering for oldVersion. An entry
	// already at newVersion (a cold preparation against the new snapshot
	// raced ahead) is current and left alone; any other version means the
	// entry missed a delta (it was prepared against a stale snapshot, or
	// an overlapping PATCH superseded this one) and serving it would be
	// wrong at any warmth, so it is dropped for re-preparation.
	s.patchMu.Lock()
	applyCtx := context.WithoutCancel(r.Context())
	prefix := fmt.Sprintf("%s\x00g%d\x00", id, gen)
	for _, key := range s.plans.Keys() {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		cp, ok := s.plans.Peek(key)
		if !ok {
			continue
		}
		switch cp.servedVersion(nil) {
		case newVersion:
			continue
		case oldVersion:
			t0 := time.Now()
			//repolint:allow lockscope: deliberate hold — the sweep serializes with other PATCHes on its dedicated patchMu, never with the read path's server lock (see the comment above)
			_, err := cp.plan.Apply(applyCtx, delta)
			s.met.phaseApply.Observe(time.Since(t0))
			if err != nil {
				s.plans.Remove(key)
				resp.PlansDropped++
				continue
			}
			// The Apply's memo traffic is what distinguishes deep reuse
			// (hits ≫ misses: only the touched spines rebuilt) from a
			// structural recompute on /metrics.
			s.met.countTreeBuild(cp.plan.TreeStats())
			resp.PlansPatched++
		default:
			s.plans.Remove(key)
			resp.PlansDropped++
		}
	}
	s.patchMu.Unlock()
	s.met.plansPatched.Add(int64(resp.PlansPatched))
	resp.Trace = traceFor(r.Context())
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDeleteDatabase(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.dbs[id]
	if ok {
		delete(s.dbs, id)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no database %q", id))
		return
	}
	// Plans are keyed by registration id, so the deregistered database's
	// entries can never serve another registration; drop them.
	prefix := id + "\x00"
	s.plans.RemoveIf(func(key string) bool { return strings.HasPrefix(key, prefix) })
	w.WriteHeader(http.StatusNoContent)
}

// shapleyRequest is the body of POST /v1/databases/{id}/shapley.
type shapleyRequest struct {
	// Query is a CQ¬ in rule syntax, or a UCQ¬ with '|' between disjuncts.
	Query string `json:"query"`
	// Fact selects single-fact mode, e.g. "TA(Adam)".
	Fact string `json:"fact,omitempty"`
	// Facts selects batched single-fact mode: the values of exactly these
	// endogenous facts, answered in request order. The per-fact toggles
	// share one prepared plan, so K facts cost one sweep of K toggles —
	// this is the request shape the cluster router's coalescing window
	// merges concurrent single-fact requests into. Mutually exclusive
	// with fact and with mode=all.
	Facts []string `json:"facts,omitempty"`
	// Mode "all" computes every endogenous fact; default is single-fact.
	Mode string `json:"mode,omitempty"`
	// Offset/Limit restrict mode=all to the fact range [offset, offset+limit)
	// of the database-order batch (limit 0 means "to the end"). This is the
	// cluster router's scatter unit: each replica computes a disjoint range
	// and the router re-streams the concatenation.
	Offset int `json:"offset,omitempty"`
	Limit  int `json:"limit,omitempty"`
	// Workers overrides the server's worker-pool size for this request.
	Workers int `json:"workers,omitempty"`
	// Exo declares schema-level exogenous relations (the set X of §4).
	Exo []string `json:"exo,omitempty"`
	// BruteForce permits exponential enumeration on intractable queries.
	BruteForce bool `json:"brute_force,omitempty"`
	// Rank sorts mode=all output by descending value (the CLI's -all table
	// order) instead of database order.
	Rank bool `json:"rank,omitempty"`
}

// shapleyResponse is the result schema shared (via ValueJSON) with the
// CLI's -json output.
type shapleyResponse struct {
	Database string     `json:"database"`
	Version  db.Version `json:"version"`
	Query    string     `json:"query"`
	Method   string     `json:"method"`
	Cache    string     `json:"cache"` // "hit" | "miss"
	Value    *ValueJSON `json:"value,omitempty"`
	// omitzero (not omitempty): a mode=all answer over a database with no
	// endogenous facts must serialize as "values": [], while single-fact
	// responses (nil slice) omit the key.
	Values []ValueJSON `json:"values,omitzero"`
	// Trace is the request's span tree, present only with ?trace=1.
	Trace *obs.Trace `json:"trace,omitempty"`
}

// ndjsonContentType selects the streaming mode=all response.
const ndjsonContentType = "application/x-ndjson"

func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), ndjsonContentType)
}

func (s *Server) handleShapley(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	snap, ok := s.snapshot(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no database %q", r.PathValue("id")))
		return
	}
	var req shapleyRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	pq, err := parseRequestQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if req.Mode != "" && req.Mode != "all" {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown mode %q (want \"\" or \"all\")", req.Mode))
		return
	}
	if req.Mode == "" && req.Fact == "" && len(req.Facts) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "single-fact mode needs \"fact\" (or \"facts\"); pass \"mode\": \"all\" for every endogenous fact")
		return
	}
	if req.Fact != "" && len(req.Facts) > 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "pass \"fact\" or \"facts\", not both")
		return
	}
	if req.Mode == "all" && (req.Fact != "" || len(req.Facts) > 0) {
		// Mirror the CLI's "-all ranks every endogenous fact; drop -fact".
		writeError(w, http.StatusBadRequest, "bad_request", "mode \"all\" computes every endogenous fact; drop \"fact\"/\"facts\"")
		return
	}
	if req.Offset != 0 || req.Limit != 0 {
		if req.Mode != "all" {
			writeError(w, http.StatusBadRequest, "bad_request", "offset/limit apply only to mode \"all\"")
			return
		}
		if req.Offset < 0 || req.Limit < 0 {
			writeError(w, http.StatusBadRequest, "bad_request", "offset and limit must be non-negative")
			return
		}
		if req.Rank {
			writeError(w, http.StatusBadRequest, "bad_request", "rank is not supported with offset/limit (a ranked range is ambiguous)")
			return
		}
	}
	stream := req.Mode == "all" && wantsNDJSON(r)
	if stream && req.Rank {
		writeError(w, http.StatusBadRequest, "bad_request", "rank is not supported with NDJSON streaming (values stream in database order)")
		return
	}
	// Parse facts before preparing: a malformed fact must not cost (or
	// cache) a full plan preparation.
	var (
		f          db.Fact
		batchFacts []db.Fact
	)
	if req.Mode == "" {
		var err error
		if len(req.Facts) > 0 {
			batchFacts = make([]db.Fact, len(req.Facts))
			for i, fs := range req.Facts {
				if batchFacts[i], err = db.ParseFact(fs); err != nil {
					writeError(w, http.StatusBadRequest, "bad_request", err.Error())
					return
				}
			}
		} else if f, err = db.ParseFact(req.Fact); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
	}
	lctx, lsp := obs.Start(ctx, "plan.lookup")
	cp, hit, err := s.planFor(lctx, snap, pq, req.Exo, req.BruteForce)
	if err != nil {
		lsp.End()
		writeSolverError(w, err)
		return
	}
	cache := "miss"
	if hit {
		cache = "hit"
	}
	if lsp.Recording() {
		lsp.SetAttrs(obs.String("cache", cache))
	}
	lsp.End()
	// Pin one plan version for the whole response: the reported version,
	// method and every value come from the same immutable state even if a
	// PATCH advances the plan mid-request.
	view := cp.plan.View()
	w.Header().Set("X-Cache", cache)
	resp := shapleyResponse{
		Database: snap.id,
		Version:  cp.servedVersion(view),
		Query:    pq.canonical,
		Method:   view.Method().String(),
		Cache:    cache,
	}

	workers := req.Workers
	if workers <= 0 {
		workers = s.opts.Workers
	}
	// rangeFacts restricts mode=all to the requested [offset, offset+limit)
	// slice of the pinned version's database-order batch; nil means the
	// full batch. Clamping (not erroring) past-the-end ranges keeps the
	// scatter contract simple for routers racing a PATCH: a shrunken batch
	// yields fewer values, never a 4xx.
	var rangeFacts []db.Fact
	if req.Mode == "all" && (req.Offset != 0 || req.Limit != 0) {
		all := view.Facts()
		lo := min(req.Offset, len(all))
		hi := len(all)
		if req.Limit > 0 {
			hi = min(lo+req.Limit, len(all))
		}
		rangeFacts = all[lo:hi]
	}
	if stream {
		s.streamShapleyAll(w, r, view, resp, rangeFacts, workers)
		return
	}
	if req.Mode == "all" {
		cctx, csp := obs.Start(ctx, "shapley.all")
		t0 := time.Now()
		var (
			vals []*core.ShapleyValue
			err  error
		)
		if rangeFacts != nil {
			vals, err = view.ShapleySubset(cctx, rangeFacts, core.BatchOptions{Workers: workers})
		} else {
			vals, err = view.ShapleyAll(cctx, core.BatchOptions{Workers: workers})
		}
		s.met.phaseAll.Observe(time.Since(t0))
		if csp.Recording() {
			csp.SetAttrs(obs.Int("facts", len(vals)), obs.Int("workers", workers))
		}
		csp.End()
		if err != nil {
			writeComputeError(w, ctx, err)
			return
		}
		s.met.valuesComputed.Add(int64(len(vals)))
		if req.Rank {
			resp.Values = RankValues(vals)
		} else {
			resp.Values = EncodeValues(vals)
		}
		resp.Trace = traceFor(ctx)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if batchFacts != nil {
		cctx, csp := obs.Start(ctx, "shapley.batch")
		t0 := time.Now()
		vals, err := view.ShapleySubset(cctx, batchFacts, core.BatchOptions{Workers: workers})
		s.met.phaseAll.Observe(time.Since(t0))
		if csp.Recording() {
			csp.SetAttrs(obs.Int("facts", len(vals)), obs.Int("workers", workers))
		}
		csp.End()
		if err != nil {
			writeComputeError(w, ctx, err)
			return
		}
		s.met.valuesComputed.Add(int64(len(vals)))
		resp.Values = EncodeValues(vals)
		resp.Trace = traceFor(ctx)
		writeJSON(w, http.StatusOK, resp)
		return
	}

	cctx, csp := obs.Start(ctx, "shapley.single")
	t0 := time.Now()
	v, err := view.Shapley(cctx, f)
	s.met.phaseSingle.Observe(time.Since(t0))
	csp.End()
	if err != nil {
		writeComputeError(w, ctx, err)
		return
	}
	s.met.valuesComputed.Add(1)
	ev := EncodeValue(v)
	resp.Value = &ev
	resp.Trace = traceFor(ctx)
	writeJSON(w, http.StatusOK, resp)
}

// streamShapleyAll writes a mode=all batch as chunked NDJSON: one header
// object, one line per fact as soon as it (and every earlier fact)
// completes, and a {"done":true} trailer — so clients over large databases
// consume values incrementally instead of waiting for the full batch. A
// non-nil rangeFacts restricts the stream to that slice of the batch. A
// mid-stream failure (including client-disconnect cancellation) ends the
// stream with an error line instead of the trailer; the absent trailer is
// what tells consumers the batch did not finish.
func (s *Server) streamShapleyAll(w http.ResponseWriter, r *http.Request, view *core.PlanView, head shapleyResponse, rangeFacts []db.Fact, workers int) {
	w.Header().Set("Content-Type", ndjsonContentType)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(head)
	flush()
	n := 0
	cctx, csp := obs.Start(r.Context(), "shapley.all")
	t0 := time.Now()
	opts := core.BatchOptions{
		Workers: workers,
		OnResult: func(v *core.ShapleyValue) {
			_ = enc.Encode(EncodeValue(v))
			n++
			flush()
		},
	}
	var err error
	if rangeFacts != nil {
		_, err = view.ShapleySubset(cctx, rangeFacts, opts)
	} else {
		_, err = view.ShapleyAll(cctx, opts)
	}
	s.met.phaseAll.Observe(time.Since(t0))
	if csp.Recording() {
		csp.SetAttrs(obs.Int("facts", n), obs.Int("workers", workers))
	}
	csp.End()
	s.met.valuesComputed.Add(int64(n))
	if err != nil {
		_ = enc.Encode(errorBody{Error: err.Error(), Kind: errKind(err)})
		flush()
		return
	}
	trailer := map[string]any{"done": true, "count": n}
	if tr := traceFor(r.Context()); tr != nil {
		trailer["trace"] = tr
	}
	_ = enc.Encode(trailer)
	flush()
}

// writeComputeError maps a post-preparation compute failure: if the
// request context is gone the client cannot read a response, so nothing is
// written (the wrapped ResponseWriter just records the abort).
func writeComputeError(w http.ResponseWriter, ctx context.Context, err error) {
	if ctx.Err() != nil {
		return
	}
	writeSolverError(w, err)
}

// classifyRequest is the body of POST /v1/databases/{id}/classify.
type classifyRequest struct {
	Query string   `json:"query"`
	Exo   []string `json:"exo,omitempty"`
}

// classifyResponse mirrors core.Classification plus a human verdict.
type classifyResponse struct {
	Query              string `json:"query"`
	SelfJoinFree       bool   `json:"self_join_free"`
	Hierarchical       bool   `json:"hierarchical"`
	PolarityConsistent bool   `json:"polarity_consistent"`
	HasNonHierPath     bool   `json:"has_non_hierarchical_path"`
	PathWitness        string `json:"path_witness,omitempty"`
	Tractable          bool   `json:"tractable"`
	Verdict            string `json:"verdict"`
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.snapshot(r.PathValue("id")); !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no database %q", r.PathValue("id")))
		return
	}
	var req classifyRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	pq, err := parseRequestQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if pq.cq == nil {
		writeError(w, http.StatusBadRequest, "bad_request", "classification applies to a single CQ¬, not a union")
		return
	}
	exoRels, err := exoSet(req.Exo)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	c := core.Classify(pq.cq, exoRels)
	resp := classifyResponse{
		Query:              pq.canonical,
		SelfJoinFree:       c.SelfJoinFree,
		Hierarchical:       c.Hierarchical,
		PolarityConsistent: c.PolarityConsistent,
		HasNonHierPath:     c.HasNonHierPath,
		Tractable:          c.Tractable,
	}
	if c.PathWitness != nil {
		resp.PathWitness = fmt.Sprintf("%s→%s via %v", c.PathWitness.X, c.PathWitness.Y, c.PathWitness.Path)
	}
	if c.Tractable {
		resp.Verdict = "exact Shapley computation is polynomial (Theorems 3.1/4.3)"
	} else {
		resp.Verdict = "exact Shapley computation is FP#P-complete (Theorems 3.1/4.3)"
	}
	writeJSON(w, http.StatusOK, resp)
}

// relevanceRequest is the body of POST /v1/databases/{id}/relevance.
type relevanceRequest struct {
	Query      string `json:"query"`
	Fact       string `json:"fact"`
	BruteForce bool   `json:"brute_force,omitempty"`
}

type relevanceResponse struct {
	Fact     string `json:"fact"`
	Relevant bool   `json:"relevant"`
	Method   string `json:"method"` // "polynomial" | "brute-force"
}

func (s *Server) handleRelevance(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no database %q", r.PathValue("id")))
		return
	}
	var req relevanceRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	pq, err := parseRequestQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	f, err := db.ParseFact(req.Fact)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	var (
		rel    bool
		method = "polynomial"
	)
	switch {
	case pq.cq != nil && pq.cq.IsPolarityConsistent():
		rel, err = relevance.IsRelevant(snap.d, pq.cq, f)
	case pq.ucq != nil && pq.ucq.IsPolarityConsistent():
		rel, err = relevance.IsRelevantUCQ(snap.d, pq.ucq, f)
	case req.BruteForce:
		method = "brute-force"
		rel, err = relevance.IsRelevantBrute(snap.d, boolQuery(pq), f)
	default:
		err = fmt.Errorf("%w: %s (set brute_force for the exponential check)", relevance.ErrNotPolarityConsistent, pq.canonical)
	}
	if err != nil {
		writeSolverError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, relevanceResponse{Fact: f.Key(), Relevant: rel, Method: method})
}

// approxRequest is the body of POST /v1/databases/{id}/approx.
type approxRequest struct {
	Query string `json:"query"`
	Fact  string `json:"fact"`
	// Eps and Delta select the additive (ε, δ)-approximation of §5.1;
	// defaults 0.1 and 0.05.
	Eps   float64 `json:"eps,omitempty"`
	Delta float64 `json:"delta,omitempty"`
	// Samples, when positive, fixes the permutation count directly and
	// overrides eps/delta.
	Samples int `json:"samples,omitempty"`
	// Seed makes the estimate reproducible; default 1.
	Seed int64 `json:"seed,omitempty"`
}

type approxResponse struct {
	Fact     string  `json:"fact"`
	Estimate float64 `json:"estimate"`
	Samples  int     `json:"samples"`
	Eps      float64 `json:"eps,omitempty"`
	Delta    float64 `json:"delta,omitempty"`
	Seed     int64   `json:"seed"`
}

func (s *Server) handleApprox(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no database %q", r.PathValue("id")))
		return
	}
	var req approxRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	pq, err := parseRequestQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	f, err := db.ParseFact(req.Fact)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if req.Eps == 0 {
		req.Eps = 0.1
	}
	if req.Delta == 0 {
		req.Delta = 0.05
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	rng := rand.New(rand.NewSource(req.Seed))
	var res core.MCResult
	if req.Samples > 0 {
		res, err = core.MonteCarloShapleyN(snap.d, boolQuery(pq), f, req.Samples, rng)
		req.Eps, req.Delta = 0, 0
	} else {
		res, err = core.MonteCarloShapley(snap.d, boolQuery(pq), f, req.Eps, req.Delta, rng)
	}
	if err != nil {
		writeSolverError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, approxResponse{
		Fact:     f.Key(),
		Estimate: res.Estimate,
		Samples:  res.Samples,
		Eps:      req.Eps,
		Delta:    req.Delta,
		Seed:     req.Seed,
	})
}

// boolQuery returns the request query as the evaluation interface.
func boolQuery(pq parsedQuery) query.BooleanQuery {
	if pq.cq != nil {
		return pq.cq
	}
	return pq.ucq
}

// handleHealthz is liveness: 200 whenever the process can serve HTTP at
// all, draining or not. Keeping it unconditional means an orchestrator
// never kills a process for the crime of shutting down gracefully.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.dbs)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"databases":      n,
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// handleReadyz is readiness: 200 while the server accepts new work, 503
// once SetDraining flips for graceful shutdown. Load balancers and the
// cluster router's health prober poll this, not /healthz, to decide
// routing.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.dbs)
	s.mu.RUnlock()
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":    "draining",
			"databases": n,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ready",
		"databases": n,
	})
}
