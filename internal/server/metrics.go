package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/numeric"
)

// metrics holds the server's counters. Everything is monotonically
// increasing except the gauges derived at scrape time.
type metrics struct {
	mu       sync.Mutex
	requests map[string]int64 // by "route|status"

	valuesComputed atomic.Int64
	plansPrepared  atomic.Int64
	plansPatched   atomic.Int64

	// DP-tree memo traffic, accumulated over every tree construction
	// (cold preparations, seeded preparations, PATCH maintenance): hits
	// are subtrees reused wholesale from the content-addressed memo,
	// misses are nodes whose input content changed and were rebuilt. A
	// PATCH sweep whose deltas land deep below the top buckets shows up
	// as hits ≫ misses; a full recompute as the reverse.
	treeMemoHits   atomic.Int64
	treeMemoMisses atomic.Int64
}

// countTreeBuild folds one tree construction's memo traffic into the
// cumulative counters.
func (m *metrics) countTreeBuild(ts core.TreeStats) {
	m.treeMemoHits.Add(int64(ts.MemoHits))
	m.treeMemoMisses.Add(int64(ts.MemoMisses))
}

func newMetrics() *metrics {
	return &metrics{requests: make(map[string]int64)}
}

func (m *metrics) countRequest(route string, status int) {
	key := fmt.Sprintf("%s|%d", route, status)
	m.mu.Lock()
	m.requests[key]++
	m.mu.Unlock()
}

// handleMetrics renders the counters in the Prometheus text exposition
// format (hand-rolled: the container has no client library, and counters
// plus gauges need nothing more).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintln(w, "# HELP shapleyd_requests_total HTTP requests served, by route pattern and status.")
	fmt.Fprintln(w, "# TYPE shapleyd_requests_total counter")
	s.met.mu.Lock()
	keys := make([]string, 0, len(s.met.requests))
	for k := range s.met.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lines := make([]string, 0, len(keys))
	for _, k := range keys {
		route, status := k, ""
		if i := strings.LastIndexByte(k, '|'); i >= 0 {
			route, status = k[:i], k[i+1:]
		}
		lines = append(lines, fmt.Sprintf("shapleyd_requests_total{route=%q,status=%q} %d", route, status, s.met.requests[k]))
	}
	s.met.mu.Unlock()
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}

	hits, misses, evictions, entries := s.CacheStats()
	fmt.Fprintln(w, "# HELP shapleyd_plan_cache_hits_total Plan-cache lookups answered from cache.")
	fmt.Fprintln(w, "# TYPE shapleyd_plan_cache_hits_total counter")
	fmt.Fprintf(w, "shapleyd_plan_cache_hits_total %d\n", hits)
	fmt.Fprintln(w, "# HELP shapleyd_plan_cache_misses_total Plan-cache lookups that prepared fresh state.")
	fmt.Fprintln(w, "# TYPE shapleyd_plan_cache_misses_total counter")
	fmt.Fprintf(w, "shapleyd_plan_cache_misses_total %d\n", misses)
	fmt.Fprintln(w, "# HELP shapleyd_plan_cache_partial_hits_total Plan-cache lookups that found a stale entry whose DP-tree nodes seeded the replacement.")
	fmt.Fprintln(w, "# TYPE shapleyd_plan_cache_partial_hits_total counter")
	fmt.Fprintf(w, "shapleyd_plan_cache_partial_hits_total %d\n", s.plans.Partials())
	fmt.Fprintln(w, "# HELP shapleyd_plan_cache_evictions_total Plans displaced by LRU capacity pressure.")
	fmt.Fprintln(w, "# TYPE shapleyd_plan_cache_evictions_total counter")
	fmt.Fprintf(w, "shapleyd_plan_cache_evictions_total %d\n", evictions)
	fmt.Fprintln(w, "# HELP shapleyd_plan_cache_entries Plans currently cached.")
	fmt.Fprintln(w, "# TYPE shapleyd_plan_cache_entries gauge")
	fmt.Fprintf(w, "shapleyd_plan_cache_entries %d\n", entries)

	fmt.Fprintln(w, "# HELP shapleyd_plans_prepared_total Plan preparations (cold paths).")
	fmt.Fprintln(w, "# TYPE shapleyd_plans_prepared_total counter")
	fmt.Fprintf(w, "shapleyd_plans_prepared_total %d\n", s.met.plansPrepared.Load())

	fmt.Fprintln(w, "# HELP shapleyd_plans_patched_total Cached plans delta-maintained in place by PATCH.")
	fmt.Fprintln(w, "# TYPE shapleyd_plans_patched_total counter")
	fmt.Fprintf(w, "shapleyd_plans_patched_total %d\n", s.met.plansPatched.Load())

	fmt.Fprintln(w, "# HELP shapleyd_tree_memo_hits_total DP-tree subtrees reused from the content-addressed memo across plan builds.")
	fmt.Fprintln(w, "# TYPE shapleyd_tree_memo_hits_total counter")
	fmt.Fprintf(w, "shapleyd_tree_memo_hits_total %d\n", s.met.treeMemoHits.Load())

	fmt.Fprintln(w, "# HELP shapleyd_tree_memo_misses_total DP-tree nodes rebuilt because their input content changed (or was first seen).")
	fmt.Fprintln(w, "# TYPE shapleyd_tree_memo_misses_total counter")
	fmt.Fprintf(w, "shapleyd_tree_memo_misses_total %d\n", s.met.treeMemoMisses.Load())

	nodes := 0
	var reps struct{ u64, u128, big int }
	for _, key := range s.plans.Keys() {
		if cp, ok := s.plans.Peek(key); ok {
			ts := cp.plan.TreeStats()
			nodes += ts.MemoEntries
			reps.u64 += ts.U64Nodes
			reps.u128 += ts.U128Nodes
			reps.big += ts.BigNodes
		}
	}
	fmt.Fprintln(w, "# HELP shapleyd_tree_memo_nodes Live DP-tree memo entries summed over cached plans (nodes shared between seeded plans count once per plan).")
	fmt.Fprintln(w, "# TYPE shapleyd_tree_memo_nodes gauge")
	fmt.Fprintf(w, "shapleyd_tree_memo_nodes %d\n", nodes)

	fmt.Fprintln(w, "# HELP shapleyd_tree_nodes_by_rep DP-tree nodes of cached plans by numeric-kernel representation of their output vector. Drift from u64 toward big means workloads are outgrowing the fixed-width fast paths.")
	fmt.Fprintln(w, "# TYPE shapleyd_tree_nodes_by_rep gauge")
	fmt.Fprintf(w, "shapleyd_tree_nodes_by_rep{rep=\"u64\"} %d\n", reps.u64)
	fmt.Fprintf(w, "shapleyd_tree_nodes_by_rep{rep=\"u128\"} %d\n", reps.u128)
	fmt.Fprintf(w, "shapleyd_tree_nodes_by_rep{rep=\"big\"} %d\n", reps.big)

	ks := numeric.Stats()
	fmt.Fprintln(w, "# HELP shapleyd_numeric_promotions_total Numeric-kernel operations whose exact result needed a wider representation than every input (process-wide).")
	fmt.Fprintln(w, "# TYPE shapleyd_numeric_promotions_total counter")
	fmt.Fprintf(w, "shapleyd_numeric_promotions_total{to=\"u128\"} %d\n", ks.PromotionsU128)
	fmt.Fprintf(w, "shapleyd_numeric_promotions_total{to=\"big\"} %d\n", ks.PromotionsBig)

	fmt.Fprintln(w, "# HELP shapleyd_values_computed_total Shapley values computed and returned.")
	fmt.Fprintln(w, "# TYPE shapleyd_values_computed_total counter")
	fmt.Fprintf(w, "shapleyd_values_computed_total %d\n", s.met.valuesComputed.Load())

	s.mu.RLock()
	n := len(s.dbs)
	s.mu.RUnlock()
	fmt.Fprintln(w, "# HELP shapleyd_databases_registered Databases currently registered.")
	fmt.Fprintln(w, "# TYPE shapleyd_databases_registered gauge")
	fmt.Fprintf(w, "shapleyd_databases_registered %d\n", n)

	fmt.Fprintln(w, "# HELP shapleyd_uptime_seconds Seconds since the server started.")
	fmt.Fprintln(w, "# TYPE shapleyd_uptime_seconds gauge")
	fmt.Fprintf(w, "shapleyd_uptime_seconds %.3f\n", time.Since(s.start).Seconds())
}
