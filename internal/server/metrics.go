package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/obs"
)

// unmatchedRoute is the metrics slot for requests no mux pattern matched.
const unmatchedRoute = "unmatched"

// routeMetrics is the per-route slot of the request instrumentation: one
// atomic counter per HTTP status code, the latency histogram and the
// slow-request counter. Slots exist for every registered route pattern
// (plus unmatchedRoute) and are created once in newMetrics; the map is
// never written afterwards, so the per-request hot path reads an immutable
// map and touches only atomics — no lock, no formatting, no allocation.
type routeMetrics struct {
	statuses [600]atomic.Int64 // indexed by status code; [0] collects out-of-range codes
	dur      *obs.Histogram
	slow     atomic.Int64
}

// metrics holds the server's counters. Everything is monotonically
// increasing except the gauges derived at scrape time.
type metrics struct {
	// routes is immutable after newMetrics (see routeMetrics); routeNames
	// is its sorted key list, the deterministic exposition order.
	routes     map[string]*routeMetrics
	routeNames []string

	reg           *obs.Registry
	slowThreshold time.Duration

	// Engine-phase latency histograms: plan preparation (cold and seeded),
	// PATCH-driven incremental maintenance, and the two compute shapes.
	phasePrepare *obs.Histogram
	phaseApply   *obs.Histogram
	phaseAll     *obs.Histogram
	phaseSingle  *obs.Histogram

	valuesComputed atomic.Int64
	plansPrepared  atomic.Int64
	plansPatched   atomic.Int64

	// Coalesced requests, by mechanism. A worker only ever increments
	// "singleflight" (requests that joined another request's in-flight
	// plan preparation instead of preparing their own); "window" and
	// "patch" are the cluster router's merges and are incremented by its
	// metrics (the router exposes the same family). All three series are
	// emitted on every process, zeros included, so dashboards can sum the
	// family fleet-wide without per-role relabeling.
	coalescedSingleflight atomic.Int64
	coalescedWindow       atomic.Int64
	coalescedPatch        atomic.Int64

	// DP-tree memo traffic, accumulated over every tree construction
	// (cold preparations, seeded preparations, PATCH maintenance): hits
	// are subtrees reused wholesale from the content-addressed memo,
	// misses are nodes whose input content changed and were rebuilt. A
	// PATCH sweep whose deltas land deep below the top buckets shows up
	// as hits ≫ misses; a full recompute as the reverse.
	treeMemoHits   atomic.Int64
	treeMemoMisses atomic.Int64

	// Product-maintenance route mix across the same constructions: interior
	// nodes whose convolution product was updated by exact division versus
	// rebuilt by the full convolution chain (see core.BuildStats).
	prodMaintained atomic.Int64
	prodRebuilt    atomic.Int64
}

// countTreeBuild folds one tree construction's memo traffic into the
// cumulative counters.
func (m *metrics) countTreeBuild(ts core.TreeStats) {
	m.treeMemoHits.Add(int64(ts.MemoHits))
	m.treeMemoMisses.Add(int64(ts.MemoMisses))
	m.prodMaintained.Add(int64(ts.ProdMaintained))
	m.prodRebuilt.Add(int64(ts.ProdRebuilt))
}

// newMetrics builds the fixed per-route slots for the given route patterns
// (unmatchedRoute is added unconditionally) and the phase histograms.
func newMetrics(routePatterns []string, slowThreshold time.Duration) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		routes:        make(map[string]*routeMetrics, len(routePatterns)+1),
		reg:           reg,
		slowThreshold: slowThreshold,
	}
	names := append([]string(nil), routePatterns...)
	names = append(names, unmatchedRoute)
	sort.Strings(names)
	for _, p := range names {
		m.routes[p] = &routeMetrics{
			dur: reg.Histogram("shapleyd_request_duration_seconds",
				"Wall time of HTTP requests in seconds, by route pattern.",
				obs.Labels("route", p), obs.DefaultDurationBuckets),
		}
	}
	m.routeNames = names
	phase := func(name string) *obs.Histogram {
		return reg.Histogram("shapleyd_phase_duration_seconds",
			"Wall time of engine phases in seconds: plan preparation, incremental PATCH maintenance, and the two compute shapes.",
			obs.Labels("phase", name), obs.DefaultDurationBuckets)
	}
	m.phasePrepare = phase("prepare")
	m.phaseApply = phase("apply")
	m.phaseAll = phase("shapley_all")
	m.phaseSingle = phase("shapley_single")
	return m
}

// countRequest records one served request. It runs on every request with
// tracing on or off, so it must stay allocation-free: an immutable map
// lookup plus three atomic updates.
func (m *metrics) countRequest(route string, status int, dur time.Duration) {
	rm := m.routes[route]
	if rm == nil {
		rm = m.routes[unmatchedRoute]
	}
	if status < 100 || status >= len(rm.statuses) {
		status = 0
	}
	rm.statuses[status].Add(1)
	rm.dur.Observe(dur)
	if m.slowThreshold > 0 && dur >= m.slowThreshold {
		rm.slow.Add(1)
	}
}

// handleMetrics renders the counters in the Prometheus text exposition
// format (hand-rolled: the container has no client library, and counters,
// gauges and fixed-boundary histograms need nothing more). Iteration is
// over the sorted routeNames slice, never the map, so consecutive scrapes
// list identical series in identical order.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintln(w, "# HELP shapleyd_requests_total HTTP requests served, by route pattern and status.")
	fmt.Fprintln(w, "# TYPE shapleyd_requests_total counter")
	for _, route := range s.met.routeNames {
		rm := s.met.routes[route]
		for code := range rm.statuses {
			if n := rm.statuses[code].Load(); n > 0 {
				fmt.Fprintf(w, "shapleyd_requests_total{route=%q,status=%q} %d\n", route, strconv.Itoa(code), n)
			}
		}
	}

	fmt.Fprintln(w, "# HELP shapleyd_slow_requests_total Requests slower than the -slow-query threshold, by route pattern.")
	fmt.Fprintln(w, "# TYPE shapleyd_slow_requests_total counter")
	for _, route := range s.met.routeNames {
		if n := s.met.routes[route].slow.Load(); n > 0 {
			fmt.Fprintf(w, "shapleyd_slow_requests_total{route=%q} %d\n", route, n)
		}
	}

	hits, misses, evictions, entries := s.CacheStats()
	fmt.Fprintln(w, "# HELP shapleyd_plan_cache_hits_total Plan-cache lookups answered from cache.")
	fmt.Fprintln(w, "# TYPE shapleyd_plan_cache_hits_total counter")
	fmt.Fprintf(w, "shapleyd_plan_cache_hits_total %d\n", hits)
	fmt.Fprintln(w, "# HELP shapleyd_plan_cache_misses_total Plan-cache lookups that prepared fresh state.")
	fmt.Fprintln(w, "# TYPE shapleyd_plan_cache_misses_total counter")
	fmt.Fprintf(w, "shapleyd_plan_cache_misses_total %d\n", misses)
	fmt.Fprintln(w, "# HELP shapleyd_plan_cache_partial_hits_total Plan-cache lookups that found a stale entry whose DP-tree nodes seeded the replacement.")
	fmt.Fprintln(w, "# TYPE shapleyd_plan_cache_partial_hits_total counter")
	fmt.Fprintf(w, "shapleyd_plan_cache_partial_hits_total %d\n", s.plans.Partials())
	fmt.Fprintln(w, "# HELP shapleyd_plan_cache_evictions_total Plans displaced by LRU capacity pressure.")
	fmt.Fprintln(w, "# TYPE shapleyd_plan_cache_evictions_total counter")
	fmt.Fprintf(w, "shapleyd_plan_cache_evictions_total %d\n", evictions)
	fmt.Fprintln(w, "# HELP shapleyd_plan_cache_entries Plans currently cached.")
	fmt.Fprintln(w, "# TYPE shapleyd_plan_cache_entries gauge")
	fmt.Fprintf(w, "shapleyd_plan_cache_entries %d\n", entries)

	fmt.Fprintln(w, "# HELP shapleyd_plans_prepared_total Plan preparations (cold paths).")
	fmt.Fprintln(w, "# TYPE shapleyd_plans_prepared_total counter")
	fmt.Fprintf(w, "shapleyd_plans_prepared_total %d\n", s.met.plansPrepared.Load())

	fmt.Fprintln(w, "# HELP shapleyd_plans_patched_total Cached plans delta-maintained in place by PATCH.")
	fmt.Fprintln(w, "# TYPE shapleyd_plans_patched_total counter")
	fmt.Fprintf(w, "shapleyd_plans_patched_total %d\n", s.met.plansPatched.Load())

	fmt.Fprintln(w, "# HELP shapleyd_coalesced_requests_total Requests answered by merging into another request's work instead of doing their own: singleflight joins an in-flight plan preparation; window and patch are the cluster router's bounded-window merges of single-fact requests and PATCH deltas.")
	fmt.Fprintln(w, "# TYPE shapleyd_coalesced_requests_total counter")
	fmt.Fprintf(w, "shapleyd_coalesced_requests_total{kind=\"singleflight\"} %d\n", s.met.coalescedSingleflight.Load())
	fmt.Fprintf(w, "shapleyd_coalesced_requests_total{kind=\"window\"} %d\n", s.met.coalescedWindow.Load())
	fmt.Fprintf(w, "shapleyd_coalesced_requests_total{kind=\"patch\"} %d\n", s.met.coalescedPatch.Load())

	fmt.Fprintln(w, "# HELP shapleyd_tree_memo_hits_total DP-tree subtrees reused from the content-addressed memo across plan builds.")
	fmt.Fprintln(w, "# TYPE shapleyd_tree_memo_hits_total counter")
	fmt.Fprintf(w, "shapleyd_tree_memo_hits_total %d\n", s.met.treeMemoHits.Load())

	fmt.Fprintln(w, "# HELP shapleyd_tree_memo_misses_total DP-tree nodes rebuilt because their input content changed (or was first seen).")
	fmt.Fprintln(w, "# TYPE shapleyd_tree_memo_misses_total counter")
	fmt.Fprintf(w, "shapleyd_tree_memo_misses_total %d\n", s.met.treeMemoMisses.Load())

	fmt.Fprintln(w, "# HELP shapleyd_tree_prod_maintained_total Interior DP-tree nodes whose convolution product was updated by exact division against the previous snapshot.")
	fmt.Fprintln(w, "# TYPE shapleyd_tree_prod_maintained_total counter")
	fmt.Fprintf(w, "shapleyd_tree_prod_maintained_total %d\n", s.met.prodMaintained.Load())

	fmt.Fprintln(w, "# HELP shapleyd_tree_prod_rebuilt_total Interior DP-tree nodes whose convolution product was rebuilt by the full convolution chain.")
	fmt.Fprintln(w, "# TYPE shapleyd_tree_prod_rebuilt_total counter")
	fmt.Fprintf(w, "shapleyd_tree_prod_rebuilt_total %d\n", s.met.prodRebuilt.Load())

	nodes := 0
	var reps struct{ u64, u128, big int }
	for _, key := range s.plans.Keys() {
		if cp, ok := s.plans.Peek(key); ok {
			ts := cp.plan.TreeStats()
			nodes += ts.MemoEntries
			reps.u64 += ts.U64Nodes
			reps.u128 += ts.U128Nodes
			reps.big += ts.BigNodes
		}
	}
	fmt.Fprintln(w, "# HELP shapleyd_tree_memo_nodes Live DP-tree memo entries summed over cached plans (nodes shared between seeded plans count once per plan).")
	fmt.Fprintln(w, "# TYPE shapleyd_tree_memo_nodes gauge")
	fmt.Fprintf(w, "shapleyd_tree_memo_nodes %d\n", nodes)

	fmt.Fprintln(w, "# HELP shapleyd_tree_nodes_by_rep DP-tree nodes of cached plans by numeric-kernel representation of their output vector. Drift from u64 toward big means workloads are outgrowing the fixed-width fast paths.")
	fmt.Fprintln(w, "# TYPE shapleyd_tree_nodes_by_rep gauge")
	fmt.Fprintf(w, "shapleyd_tree_nodes_by_rep{rep=\"u64\"} %d\n", reps.u64)
	fmt.Fprintf(w, "shapleyd_tree_nodes_by_rep{rep=\"u128\"} %d\n", reps.u128)
	fmt.Fprintf(w, "shapleyd_tree_nodes_by_rep{rep=\"big\"} %d\n", reps.big)

	ks := numeric.Stats()
	fmt.Fprintln(w, "# HELP shapleyd_numeric_promotions_total Numeric-kernel operations whose exact result needed a wider representation than every input (process-wide).")
	fmt.Fprintln(w, "# TYPE shapleyd_numeric_promotions_total counter")
	fmt.Fprintf(w, "shapleyd_numeric_promotions_total{to=\"u128\"} %d\n", ks.PromotionsU128)
	fmt.Fprintf(w, "shapleyd_numeric_promotions_total{to=\"big\"} %d\n", ks.PromotionsBig)

	fmt.Fprintln(w, "# HELP shapleyd_values_computed_total Shapley values computed and returned.")
	fmt.Fprintln(w, "# TYPE shapleyd_values_computed_total counter")
	fmt.Fprintf(w, "shapleyd_values_computed_total %d\n", s.met.valuesComputed.Load())

	s.mu.RLock()
	n := len(s.dbs)
	s.mu.RUnlock()
	fmt.Fprintln(w, "# HELP shapleyd_databases_registered Databases currently registered.")
	fmt.Fprintln(w, "# TYPE shapleyd_databases_registered gauge")
	fmt.Fprintf(w, "shapleyd_databases_registered %d\n", n)

	fmt.Fprintln(w, "# HELP shapleyd_uptime_seconds Seconds since the server started.")
	fmt.Fprintln(w, "# TYPE shapleyd_uptime_seconds gauge")
	fmt.Fprintf(w, "shapleyd_uptime_seconds %.3f\n", time.Since(s.start).Seconds())

	// The request- and phase-duration histograms registered in newMetrics.
	s.met.reg.Expose(w)
}
