package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/db"
	"repro/internal/paperex"
)

// TestServerPatchMaintainsPlans: PATCH must bump the version, patch the
// cached plan in place (no re-preparation), and the maintained plan must
// answer bit-identically to a fresh registration of the patched database.
func TestServerPatchMaintainsPlans(t *testing.T) {
	s := New(Options{})
	registerUniversity(t, s)

	var cold shapleyResponse
	if rec := do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all"}, &cold); rec.Code != http.StatusOK {
		t.Fatalf("cold: %d: %s", rec.Code, rec.Body.String())
	}
	if cold.Version != 1 {
		t.Fatalf("cold version %d, want 1", cold.Version)
	}

	var patched patchResponse
	rec := do(t, s, "PATCH", "/v1/databases/uni", map[string]any{"add_endo": []string{"TA(Caroline)"}}, &patched)
	if rec.Code != http.StatusOK {
		t.Fatalf("patch: %d: %s", rec.Code, rec.Body.String())
	}
	if patched.Version != 2 || patched.PlansPatched != 1 || patched.PlansDropped != 0 {
		t.Fatalf("patch response %+v, want version 2 / 1 patched / 0 dropped", patched)
	}
	if patched.Endogenous != 9 {
		t.Fatalf("endogenous %d after patch, want 9", patched.Endogenous)
	}

	// The maintained plan serves the new version warm: a cache hit, still
	// exactly one preparation ever, and values matching a from-scratch
	// registration of the patched database.
	var warm shapleyResponse
	if rec := do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all"}, &warm); rec.Code != http.StatusOK {
		t.Fatalf("warm: %d: %s", rec.Code, rec.Body.String())
	}
	if warm.Cache != "hit" || warm.Version != 2 {
		t.Fatalf("post-patch request: cache %q version %d, want hit/2", warm.Cache, warm.Version)
	}
	if n := s.PlansPrepared(); n != 1 {
		t.Fatalf("%d preparations after patch, want 1 (plan must be maintained, not rebuilt)", n)
	}

	fresh := New(Options{})
	if rec := do(t, fresh, "POST", "/v1/databases", map[string]any{"id": "uni2", "text": paperex.UniversityDBText + "endo TA(Caroline)\n"}, nil); rec.Code != http.StatusCreated {
		t.Fatalf("fresh register: %d", rec.Code)
	}
	var want shapleyResponse
	if rec := do(t, fresh, "POST", "/v1/databases/uni2/shapley", map[string]any{"query": q1Src, "mode": "all"}, &want); rec.Code != http.StatusOK {
		t.Fatalf("fresh all: %d", rec.Code)
	}
	if len(warm.Values) != len(want.Values) {
		t.Fatalf("%d values, want %d", len(warm.Values), len(want.Values))
	}
	for i := range want.Values {
		if warm.Values[i] != want.Values[i] {
			t.Fatalf("value %d: maintained %+v vs fresh %+v", i, warm.Values[i], want.Values[i])
		}
	}

	// The patched values must actually differ from the pre-patch batch
	// (TA(Caroline) flips Caroline's buckets), or this test proves nothing.
	same := true
	for i := range cold.Values {
		if cold.Values[i] != warm.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("patch did not change any value; pick a more influential delta")
	}
}

// TestServerPatchErrorsAndNoOp: malformed facts, bad deltas, unknown
// databases and the empty-delta no-op.
func TestServerPatchErrorsAndNoOp(t *testing.T) {
	s := New(Options{})
	registerUniversity(t, s)

	if rec := do(t, s, "PATCH", "/v1/databases/nope", map[string]any{"add_endo": []string{"TA(X)"}}, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown db: %d", rec.Code)
	}
	if rec := do(t, s, "PATCH", "/v1/databases/uni", map[string]any{"add_endo": []string{"not a fact"}}, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed fact: %d", rec.Code)
	}
	var errResp errorBody
	if rec := do(t, s, "PATCH", "/v1/databases/uni", map[string]any{"remove": []string{"TA(Nobody)"}}, &errResp); rec.Code != http.StatusBadRequest || errResp.Kind != "bad_delta" {
		t.Fatalf("bad delta: %d %+v", rec.Code, errResp)
	}
	var noop patchResponse
	if rec := do(t, s, "PATCH", "/v1/databases/uni", map[string]any{}, &noop); rec.Code != http.StatusOK {
		t.Fatalf("empty delta: %d", rec.Code)
	}
	if noop.Version != 1 || noop.PlansPatched != 0 {
		t.Fatalf("empty delta must keep version 1, got %+v", noop)
	}
}

// TestServerPatchDropsUnservablePlan: a delta that endogenously grows a
// relation some cached plan declared exogenous must drop that plan and
// keep patching the others.
func TestServerPatchDropsUnservablePlan(t *testing.T) {
	s := New(Options{})
	registerUniversity(t, s)

	// Two plans over the same database: one plain, one declaring Stud
	// exogenous.
	if rec := do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all"}, nil); rec.Code != http.StatusOK {
		t.Fatalf("plain: %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all", "exo": []string{"Stud"}}, nil); rec.Code != http.StatusOK {
		t.Fatalf("exo: %d", rec.Code)
	}

	var patched patchResponse
	rec := do(t, s, "PATCH", "/v1/databases/uni", map[string]any{"add_endo": []string{"Stud(Zoe)"}}, &patched)
	if rec.Code != http.StatusOK {
		t.Fatalf("patch: %d: %s", rec.Code, rec.Body.String())
	}
	if patched.PlansPatched != 1 || patched.PlansDropped != 1 {
		t.Fatalf("patched/dropped = %d/%d, want 1/1", patched.PlansPatched, patched.PlansDropped)
	}
	// The exo plan is gone: the next exo request must fail the exogeneity
	// check instead of serving stale state.
	if rec := do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all", "exo": []string{"Stud"}}, nil); rec.Code == http.StatusOK {
		t.Fatal("exo plan must not survive an endogenous Stud fact")
	}
}

// TestServerNDJSONStreaming reads a mode=all stream incrementally over a
// real connection: a header line, eight value lines in deterministic
// database order, and a done trailer, with chunked transfer encoding (no
// buffered Content-Length).
func TestServerNDJSONStreaming(t *testing.T) {
	s := New(Options{})
	registerUniversity(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	req, err := http.NewRequest("POST", ts.URL+"/v1/databases/uni/shapley",
		strings.NewReader(`{"query":"`+q1Src+`","mode":"all"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	if len(resp.TransferEncoding) == 0 || resp.TransferEncoding[0] != "chunked" {
		t.Fatalf("transfer encoding %v, want chunked (streaming, not buffered)", resp.TransferEncoding)
	}

	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("missing header line")
	}
	var head shapleyResponse
	if err := json.Unmarshal(sc.Bytes(), &head); err != nil {
		t.Fatalf("header line: %v", err)
	}
	if head.Database != "uni" || head.Method != "hierarchical" || head.Cache != "miss" {
		t.Fatalf("header %+v", head)
	}
	wantOrder := []string{
		"TA(Adam)", "TA(Ben)", "TA(David)",
		"Reg(Adam,OS)", "Reg(Adam,AI)", "Reg(Ben,OS)", "Reg(Caroline,DB)", "Reg(Caroline,IC)",
	}
	// Each line is complete as soon as the scanner yields it — the
	// line-by-line read IS the incremental consumption.
	for i, wantFact := range wantOrder {
		if !sc.Scan() {
			t.Fatalf("stream ended before value %d", i)
		}
		var v ValueJSON
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("value line %d: %v (%s)", i, err, sc.Text())
		}
		if v.Fact != wantFact {
			t.Fatalf("value %d is %s, want %s", i, v.Fact, wantFact)
		}
		if want := paperex.Example23Values[v.Fact]; v.Shapley != want {
			t.Fatalf("Shapley(%s) = %s, want %s", v.Fact, v.Shapley, want)
		}
	}
	if !sc.Scan() {
		t.Fatal("missing trailer")
	}
	var trailer struct {
		Done  bool `json:"done"`
		Count int  `json:"count"`
	}
	if err := json.Unmarshal(sc.Bytes(), &trailer); err != nil || !trailer.Done || trailer.Count != len(wantOrder) {
		t.Fatalf("trailer %s (err %v)", sc.Text(), err)
	}
	if sc.Scan() {
		t.Fatalf("unexpected extra line %q", sc.Text())
	}

	// rank + streaming is a contradiction (streams are in database order).
	req2, _ := http.NewRequest("POST", ts.URL+"/v1/databases/uni/shapley",
		strings.NewReader(`{"query":"`+q1Src+`","mode":"all","rank":true}`))
	req2.Header.Set("Accept", "application/x-ndjson")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("rank+stream: %d, want 400", resp2.StatusCode)
	}
}

// TestServerSingleFlightColdRequests: N concurrent identical cold requests
// must trigger exactly one plan preparation (run under -race in CI).
func TestServerSingleFlightColdRequests(t *testing.T) {
	s := New(Options{})
	registerUniversity(t, s)

	const n = 16
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all"}, nil)
			codes[i] = rec.Code
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: status %d", i, c)
		}
	}
	if n := s.PlansPrepared(); n != 1 {
		t.Fatalf("%d preparations for %d concurrent identical cold requests, want exactly 1", n, 16)
	}
}

// TestServerConcurrentPatchAndQuery hammers PATCH against warm queries;
// with -race this is the data-race gate for in-place plan maintenance.
func TestServerConcurrentPatchAndQuery(t *testing.T) {
	s := New(Options{})
	registerUniversity(t, s)
	if rec := do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all"}, nil); rec.Code != http.StatusOK {
		t.Fatalf("seed plan: %d", rec.Code)
	}

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				rec := do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all"}, nil)
				if rec.Code != http.StatusOK {
					t.Errorf("query during patches: %d", rec.Code)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if rec := do(t, s, "PATCH", "/v1/databases/uni", map[string]any{"add_endo": []string{"TA(Caroline)"}}, nil); rec.Code != http.StatusOK {
				t.Errorf("patch add: %d", rec.Code)
				return
			}
			if rec := do(t, s, "PATCH", "/v1/databases/uni", map[string]any{"remove": []string{"TA(Caroline)"}}, nil); rec.Code != http.StatusOK {
				t.Errorf("patch remove: %d", rec.Code)
				return
			}
		}
	}()
	wg.Wait()

	// After the churn the database is back at its original content and the
	// maintained plan must still produce the Example 2.3 values.
	var resp shapleyResponse
	if rec := do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all"}, &resp); rec.Code != http.StatusOK {
		t.Fatalf("final: %d", rec.Code)
	}
	for _, v := range resp.Values {
		if want := paperex.Example23Values[v.Fact]; v.Shapley != want {
			t.Fatalf("Shapley(%s) = %s, want %s after churn", v.Fact, v.Shapley, want)
		}
	}
}

// TestServerReRegisterDoesNotAliasPlans: deleting a database and
// re-registering the same id with different content must never serve the
// old registration's cached (or in-flight) plans — keys carry a
// per-registration generation.
func TestServerReRegisterDoesNotAliasPlans(t *testing.T) {
	s := New(Options{})
	registerUniversity(t, s)
	var first shapleyResponse
	if rec := do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all"}, &first); rec.Code != http.StatusOK {
		t.Fatalf("first: %d", rec.Code)
	}
	if rec := do(t, s, "DELETE", "/v1/databases/uni", nil, nil); rec.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", rec.Code)
	}
	// Same id, same version number (1), different content.
	if rec := do(t, s, "POST", "/v1/databases", map[string]any{"id": "uni", "text": "exo Stud(Zoe)\nendo TA(Zoe)\nendo Reg(Zoe, OS)"}, nil); rec.Code != http.StatusCreated {
		t.Fatalf("re-register: %d", rec.Code)
	}
	var second shapleyResponse
	if rec := do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all"}, &second); rec.Code != http.StatusOK {
		t.Fatalf("second: %d", rec.Code)
	}
	if second.Cache != "miss" {
		t.Fatalf("re-registered database served cache %q, want miss", second.Cache)
	}
	if len(second.Values) != 2 || second.Values[0].Fact != "TA(Zoe)" {
		t.Fatalf("values answer for the wrong registration: %+v", second.Values)
	}
}

// TestServerStalePlanSeedsPreparation: a cache entry that fails version
// revalidation (in production: a preparation that raced a PATCH) counts as
// a partial hit — not a cold miss — and its DP-tree seeds the replacement
// preparation, so every content-unchanged node is reused. The seeded plan
// must answer bit-identically to a from-scratch registration.
func TestServerStalePlanSeedsPreparation(t *testing.T) {
	s := New(Options{})
	registerUniversity(t, s)

	var cold shapleyResponse
	if rec := do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all"}, &cold); rec.Code != http.StatusOK {
		t.Fatalf("cold: %d: %s", rec.Code, rec.Body.String())
	}

	// Advance the registered database behind the maintenance sweep's back,
	// leaving the cached plan answering for the old version.
	delta := db.Delta{AddEndo: []db.Fact{db.F("Reg", "Adam", "DB2")}}
	s.mu.Lock()
	rdb := s.dbs["uni"]
	newD, err := rdb.d.Apply(delta)
	if err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	rdb.d, rdb.version, rdb.fingerprint = newD, rdb.version+1, newD.Fingerprint()
	s.mu.Unlock()

	hitsBefore := s.met.treeMemoHits.Load()
	var resp shapleyResponse
	if rec := do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all"}, &resp); rec.Code != http.StatusOK {
		t.Fatalf("stale: %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Cache != "miss" || resp.Version != 2 {
		t.Fatalf("stale request: cache %q version %d, want miss/2", resp.Cache, resp.Version)
	}
	if p := s.plans.Partials(); p != 1 {
		t.Fatalf("partial hits = %d, want 1 (stale entry must not count as a cold miss)", p)
	}
	if n := s.PlansPrepared(); n != 2 {
		t.Fatalf("preparations = %d, want 2", n)
	}
	if h := s.met.treeMemoHits.Load(); h <= hitsBefore {
		t.Fatalf("seeded preparation reused no DP-tree nodes (hits %d -> %d)", hitsBefore, h)
	}

	// Bit-identity with a cold registration of the evolved database.
	fresh := New(Options{})
	text := paperex.UniversityDBText + "endo Reg(Adam, DB2)\n"
	if rec := do(t, fresh, "POST", "/v1/databases", map[string]any{"id": "uni2", "text": text}, nil); rec.Code != http.StatusCreated {
		t.Fatalf("fresh register: %d", rec.Code)
	}
	var want shapleyResponse
	if rec := do(t, fresh, "POST", "/v1/databases/uni2/shapley", map[string]any{"query": q1Src, "mode": "all"}, &want); rec.Code != http.StatusOK {
		t.Fatalf("fresh: %d: %s", rec.Code, rec.Body.String())
	}
	if len(resp.Values) != len(want.Values) {
		t.Fatalf("%d values, want %d", len(resp.Values), len(want.Values))
	}
	for i := range want.Values {
		if resp.Values[i] != want.Values[i] {
			t.Fatalf("value %d: %+v, want %+v", i, resp.Values[i], want.Values[i])
		}
	}

	// The next request is a clean hit at the new version.
	var warm shapleyResponse
	do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all"}, &warm)
	if warm.Cache != "hit" || warm.Version != 2 {
		t.Fatalf("post-seed request: cache %q version %d, want hit/2", warm.Cache, warm.Version)
	}
}
