package server

import (
	"sort"

	"repro/internal/core"
)

// ValueJSON is the wire form of one Shapley value. It is the single result
// schema shared by the server's /shapley responses and the CLI's -json
// output: the exact rational as a string (math/big rationals do not fit
// JSON numbers), a float approximation for consumers that only chart, and
// the method the dichotomy selected.
type ValueJSON struct {
	Rank    int     `json:"rank,omitempty"` // 1-based; set by RankValues only
	Fact    string  `json:"fact"`
	Shapley string  `json:"shapley"` // exact rational, e.g. "-3/28"
	Decimal float64 `json:"decimal"`
	Method  string  `json:"method"`
}

// EncodeValue converts one computed value.
func EncodeValue(v *core.ShapleyValue) ValueJSON {
	f64, _ := v.Value.Float64()
	return ValueJSON{
		Fact:    v.Fact.Key(),
		Shapley: v.Value.RatString(),
		Decimal: f64,
		Method:  v.Method.String(),
	}
}

// EncodeValues converts a batch in its given (database) order.
func EncodeValues(vals []*core.ShapleyValue) []ValueJSON {
	out := make([]ValueJSON, len(vals))
	for i, v := range vals {
		out[i] = EncodeValue(v)
	}
	return out
}

// RankValues converts a batch sorted by descending Shapley value (ties
// broken by fact key for determinism) with 1-based ranks — the order of
// the CLI's -all attribution table.
func RankValues(vals []*core.ShapleyValue) []ValueJSON {
	ranked := append([]*core.ShapleyValue(nil), vals...)
	sort.SliceStable(ranked, func(i, j int) bool {
		if c := ranked[i].Value.Cmp(ranked[j].Value); c != 0 {
			return c > 0
		}
		return ranked[i].Fact.Key() < ranked[j].Fact.Key()
	})
	out := EncodeValues(ranked)
	for i := range out {
		out[i].Rank = i + 1
	}
	return out
}
