package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/db"
	"repro/internal/paperex"
	"repro/internal/workload"
)

// TestServerWarmRequestsSkipPreparation is the structural (timing-free) form of
// the repeated-query acceptance criterion: after the cold request, any
// number of repeats of the same mode=all query must be answered from the
// cached PreparedBatch — zero additional plan preparations (no
// re-validation, re-classification, ExoShap or DP-table setup) — while
// returning byte-identical results.
func TestServerWarmRequestsSkipPreparation(t *testing.T) {
	s := New(Options{})
	registerUniversity(t, s)

	var cold shapleyResponse
	do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all"}, &cold)
	if got := s.met.plansPrepared.Load(); got != 1 {
		t.Fatalf("plans prepared after cold request = %d, want 1", got)
	}
	const repeats = 10
	for i := 0; i < repeats; i++ {
		var warm shapleyResponse
		rec := do(t, s, "POST", "/v1/databases/uni/shapley", map[string]any{"query": q1Src, "mode": "all"}, &warm)
		if rec.Code != http.StatusOK || warm.Cache != "hit" {
			t.Fatalf("repeat %d: status %d cache %q", i, rec.Code, warm.Cache)
		}
		for j := range warm.Values {
			if warm.Values[j] != cold.Values[j] {
				t.Fatalf("repeat %d: value %d drifted: %+v vs %+v", i, j, warm.Values[j], cold.Values[j])
			}
		}
	}
	if got := s.met.plansPrepared.Load(); got != 1 {
		t.Fatalf("plans prepared after %d warm requests = %d, want still 1", repeats, got)
	}
	if hits, _, _, _ := s.CacheStats(); hits != repeats {
		t.Fatalf("cache hits = %d, want %d", hits, repeats)
	}
}

// benchWorkload is the registered database: a university workload large
// enough that the fact-independent setup (validation, classification,
// ExoShap, relevance partition, per-bucket DP tables, prefix/suffix
// convolutions) is a visible fraction of a request.
func benchWorkload() *db.Database {
	return workload.University(workload.UniversityConfig{
		Students: 60, Courses: 12, RegPerStudent: 3, TAFraction: 0.4, Seed: 11,
	})
}

func benchServer(b *testing.B) *Server {
	b.Helper()
	s := New(Options{})
	body, _ := json.Marshal(map[string]any{"id": "bench", "text": benchWorkload().String()})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/databases", bytes.NewReader(body)))
	if rec.Code != http.StatusCreated {
		b.Fatalf("register: %d %s", rec.Code, rec.Body.String())
	}
	return s
}

// BenchmarkServerRepeatedQuery measures the plan cache's effect on a
// repeated query over a registered database: Cold purges the cache every
// iteration (every request re-prepares), Warm hits the cached
// PreparedBatch after the first. The paths return bit-for-bit identical
// values (TestServerWarmRequestsSkipPreparation asserts it); the delta here is
// purely the amortized setup. Three request shapes:
//
//   - AllHierarchical: mode=all with the Theorem 3.1 algorithm — the
//     per-fact toggles dominate, so the cache trims only the shared-table
//     construction;
//   - AllExoShap: mode=all where cold requests re-run the Algorithm 1
//     ExoShap transformation, the expensive fact-independent stage;
//   - SingleFact: the serving sweet spot — a warm single-fact request is
//     two sub-DP toggles instead of a full preparation.
func BenchmarkServerRepeatedQuery(b *testing.B) {
	q2 := paperex.Q2().String()
	oneFact := benchWorkload().EndoFacts()[0].Key()
	shapes := []struct {
		name string
		req  map[string]any
	}{
		{"AllHierarchical", map[string]any{"query": paperex.Q1().String(), "mode": "all", "workers": 1}},
		{"AllExoShap", map[string]any{"query": q2, "mode": "all", "workers": 1, "exo": []string{"Stud", "Course", "Adv"}}},
		{"SingleFact", map[string]any{"query": paperex.Q1().String(), "fact": oneFact}},
	}
	run := func(b *testing.B, s *Server, reqBody []byte, purge bool) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if purge {
				s.PurgePlans()
			}
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/databases/bench/shapley", bytes.NewReader(reqBody)))
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	}
	for _, shape := range shapes {
		reqBody, _ := json.Marshal(shape.req)
		b.Run(shape.name+"/Cold", func(b *testing.B) {
			s := benchServer(b)
			b.ResetTimer()
			run(b, s, reqBody, true)
		})
		b.Run(shape.name+"/Warm", func(b *testing.B) {
			s := benchServer(b)
			// Prime the plan outside the timed region.
			run(b, s, reqBody, false)
			b.ResetTimer()
			run(b, s, reqBody, false)
		})
	}
}
