package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/db"
)

// This file is the cluster warm-up surface: exporting a registered
// database (text, version, and the memo snapshots of its cached plans)
// as one portable blob, and importing such a blob to stand up a replica
// whose plans are warm on arrival — no DP-tree is ever recomputed from
// scratch for state another replica already holds. The wire format lives
// in internal/cluster; the semantic validation (does each snapshot match
// the replayed tree build?) lives in core's ImportPlan.

// validateDatabaseID enforces the registration id rules. "." and ".."
// survive registration but are unreachable afterwards: ServeMux
// path-cleaning redirects /v1/databases/../... away before route matching
// ever sees the id. Control characters are rejected so ids can never
// embed the '\x00' separator of plan-cache keys.
func validateDatabaseID(id string) error {
	if strings.ContainsAny(id, "/ \t\n") || id == "." || id == ".." ||
		strings.ContainsFunc(id, func(r rune) bool { return r < 0x20 || r == 0x7f }) {
		return fmt.Errorf("database id must not contain slashes, whitespace, control characters or be a dot segment")
	}
	return nil
}

// ExportState captures database id as a warm-up snapshot: its current
// text and version, plus the exported plan snapshots of every cached plan
// answering for exactly that version (entries mid-PATCH or stale are
// skipped — a snapshot must never mix versions). The ok result is false
// when no such database is registered.
func (s *Server) ExportState(id string) (*cluster.Snapshot, bool) {
	snap, ok := s.snapshot(id)
	if !ok {
		return nil, false
	}
	dbText := snap.d.String()
	var plans []*core.PlanSnapshot
	prefix := fmt.Sprintf("%s\x00g%d\x00", id, snap.gen)
	for _, key := range s.plans.Keys() {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		cp, ok := s.plans.Peek(key)
		if !ok || cp.servedVersion(nil) != snap.version {
			continue
		}
		ps, err := cp.plan.Export()
		if err != nil {
			// A plan that cannot be exported (e.g. an opaque tree) is an
			// optimization the importer will simply rebuild cold.
			continue
		}
		plans = append(plans, ps)
	}
	// SnapshotOf drops any plan whose text raced past snap.version.
	return cluster.SnapshotOf(id, snap.version, dbText, plans), true
}

// ImportState installs a warm-up snapshot, replacing any existing
// registration of the same id (under a fresh generation, so plans and
// in-flight preparations of the displaced registration can never serve
// the new one). Each plan snapshot is imported through the structural
// replay of core's ImportPlan and seeded into the plan cache at the
// snapshot's version; a plan that fails to import is dropped and counted,
// never fatal — the database itself is what must install.
func (s *Server) ImportState(ctx context.Context, snap *cluster.Snapshot) (imported, dropped int, err error) {
	if snap.ID == "" {
		return 0, 0, fmt.Errorf("snapshot has no database id")
	}
	if err := validateDatabaseID(snap.ID); err != nil {
		return 0, 0, err
	}
	if snap.Version < 1 {
		return 0, 0, fmt.Errorf("snapshot version %d is invalid (versions start at 1)", snap.Version)
	}
	d, err := db.Parse(snap.DBText)
	if err != nil {
		return 0, 0, fmt.Errorf("snapshot database text: %w", err)
	}

	s.mu.Lock()
	s.gens++
	rdb := &registeredDB{
		id:          snap.ID,
		gen:         s.gens,
		fingerprint: d.Fingerprint(),
		d:           d,
		version:     snap.Version,
		created:     time.Now(),
	}
	s.dbs[snap.ID] = rdb
	gen := rdb.gen
	s.mu.Unlock()
	// The displaced registration's cache entries are unreachable (their
	// keys carry the old generation); drop them rather than waiting for
	// LRU pressure.
	oldPrefix := snap.ID + "\x00"
	newPrefix := fmt.Sprintf("%s\x00g%d\x00", snap.ID, gen)
	s.plans.RemoveIf(func(key string) bool {
		return strings.HasPrefix(key, oldPrefix) && !strings.HasPrefix(key, newPrefix)
	})

	// Warm the plan cache. The import is detached from the caller's
	// cancellation like any plan preparation: once the registration is
	// installed, a disconnecting uploader must not leave half the plans
	// cold.
	ictx := context.WithoutCancel(ctx)
	for _, ps := range snap.PlanSnapshots() {
		pq, perr := parseRequestQuery(ps.Query)
		if perr != nil {
			dropped++
			continue
		}
		if _, perr := exoSet(ps.Exo); perr != nil {
			// planKey's comma-joined exo component relies on exoSet's
			// name validation for collision freedom.
			dropped++
			continue
		}
		eng := core.NewEngine(
			core.WithExoRelations(ps.Exo...),
			core.WithBruteForce(ps.Brute),
			core.WithWorkers(s.opts.Workers),
			core.WithPrepareParallelism(s.opts.PrepareParallelism),
			core.WithSpawnCost(s.opts.PrepareSpawnCost),
		)
		t0 := time.Now()
		plan, perr := eng.ImportPlan(ictx, ps)
		s.met.phasePrepare.Observe(time.Since(t0))
		if perr != nil {
			dropped++
			continue
		}
		s.met.countTreeBuild(plan.TreeStats())
		key := planKey(snap.ID, gen, pq.canonical, ps.Exo, ps.Brute)
		s.plans.Put(key, &cachedPlan{plan: plan, base: snap.Version - 1})
		imported++
	}
	return imported, dropped, nil
}

// handleExportSnapshot serves GET /v1/databases/{id}/snapshot: the
// database and its warm plans in the cluster wire format.
func (s *Server) handleExportSnapshot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.ExportState(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no database %q", id))
		return
	}
	body := cluster.EncodeSnapshot(snap)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Snapshot-Version", fmt.Sprintf("%d", snap.Version))
	w.Header().Set("X-Snapshot-Plans", fmt.Sprintf("%d", len(snap.Plans)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// snapshotImportResponse reports what a PUT snapshot installed.
type snapshotImportResponse struct {
	databaseInfo
	PlansImported int `json:"plans_imported"`
	PlansDropped  int `json:"plans_dropped"`
}

// handleImportSnapshot serves PUT /v1/databases/{id}/snapshot: install
// the uploaded snapshot under the path id (which must match the id
// recorded in the body — a snapshot is the state of one database, not a
// template).
func (s *Server) handleImportSnapshot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	snap, err := cluster.DecodeSnapshot(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_snapshot", err.Error())
		return
	}
	if snap.ID != id {
		writeError(w, http.StatusBadRequest, "bad_snapshot",
			fmt.Sprintf("snapshot is of database %q, not %q", snap.ID, id))
		return
	}
	imported, dropped, err := s.ImportState(r.Context(), snap)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_snapshot", err.Error())
		return
	}
	dsnap, _ := s.snapshot(id)
	writeJSON(w, http.StatusOK, snapshotImportResponse{
		databaseInfo:  dsnap.info(),
		PlansImported: imported,
		PlansDropped:  dropped,
	})
}
