package server

import (
	"fmt"
	"sync"
)

// flightGroup coalesces concurrent identical cold-path preparations: when
// N requests miss the plan cache on the same key at once, exactly one of
// them runs the preparation and the other N−1 wait for its result instead
// of preparing N copies of the same state. (A hand-rolled miniature of
// x/sync/singleflight — the module has no external dependencies.)
type flightGroup[V any] struct {
	mu    sync.Mutex
	calls map[string]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// do runs fn under key, returning the shared result if another goroutine
// is already running fn for the same key. shared reports whether this
// caller joined an in-flight computation instead of executing fn itself.
func (g *flightGroup[V]) do(key string, fn func() (V, error)) (v V, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall[V])
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	// The flight must be torn down even if fn panics (net/http recovers
	// per request, so without this the entry would pin the map forever and
	// every future identical request would block on done). Joiners of a
	// panicked flight get an error; the panic itself propagates to the
	// leader's recover.
	defer func() {
		if r := recover(); r != nil {
			c.err = fmt.Errorf("server: plan preparation panicked: %v", r)
			g.finish(key, c)
			panic(r)
		}
		g.finish(key, c)
	}()
	c.val, c.err = fn()
	return c.val, false, c.err
}

// finish removes the flight entry and releases its waiters.
func (g *flightGroup[V]) finish(key string, c *flightCall[V]) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
}
