package probdb

import (
	"math/big"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/db"
	"repro/internal/query"
)

func TestExpectedCountSimple(t *testing.T) {
	// q(x) :- R(x): E[#answers] = Σ p_i by linearity.
	q := query.MustParse("q(x) :- R(x)")
	pd := New()
	pd.MustAdd(db.F("R", "a"), rat(1, 2))
	pd.MustAdd(db.F("R", "b"), rat(1, 4))
	got, err := ExpectedCount(pd, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(rat(3, 4)) != 0 {
		t.Fatalf("E[count] = %s, want 3/4", got.RatString())
	}
}

func TestExpectedCountAgainstBruteForce(t *testing.T) {
	q := query.MustParse("q(x) :- R(x, y), !S(y)")
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		pd := randomProbInstance(rng, q, 3, 4)
		if len(pd.UncertainFacts()) > 12 {
			continue
		}
		fast, err := ExpectedCount(pd, q)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := BruteForceExpectedAggregate(pd, q, WeightOne)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Cmp(slow) != 0 {
			t.Fatalf("E[count] lifted %s != brute %s", fast.RatString(), slow.RatString())
		}
	}
}

func TestExpectedSumAgainstBruteForce(t *testing.T) {
	q := query.MustParse("q(p, r) :- Export(p), !Grows(p), Profit(p, r)")
	pd := New()
	pd.MustAdd(db.F("Export", "Wheat"), rat(1, 2))
	pd.MustAdd(db.F("Export", "Rice"), rat(1, 4))
	pd.MustAdd(db.F("Grows", "Rice"), rat(1, 2))
	pd.MustAdd(db.F("Profit", "Wheat", "10"), rat(1, 1))
	pd.MustAdd(db.F("Profit", "Rice", "8"), rat(1, 1))
	fast, err := ExpectedSum(pd, q, "r")
	if err != nil {
		t.Fatal(err)
	}
	weight := func(row []db.Const) (*big.Rat, error) {
		v, err := strconv.Atoi(string(row[1]))
		if err != nil {
			return nil, err
		}
		return big.NewRat(int64(v), 1), nil
	}
	slow, err := BruteForceExpectedAggregate(pd, q, weight)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cmp(slow) != 0 {
		t.Fatalf("E[sum] lifted %s != brute %s", fast.RatString(), slow.RatString())
	}
	// Closed form: 10·(1/2) + 8·(1/4)·(1/2) = 6.
	if fast.Cmp(rat(6, 1)) != 0 {
		t.Fatalf("E[sum] = %s, want 6", fast.RatString())
	}
}

func TestExpectedAggregateErrors(t *testing.T) {
	pd := New()
	pd.MustAdd(db.F("R", "a"), rat(1, 2))
	if _, err := ExpectedCount(pd, query.MustParse("q() :- R(x)")); err == nil {
		t.Fatal("Boolean query accepted for aggregate expectation")
	}
	if _, err := ExpectedSum(pd, query.MustParse("q(x) :- R(x)"), "zz"); err == nil {
		t.Fatal("unknown sum variable accepted")
	}
	// Non-numeric sum values.
	pd2 := New()
	pd2.MustAdd(db.F("P", "a", "NaN"), rat(1, 2))
	if _, err := ExpectedSum(pd2, query.MustParse("q(x, r) :- P(x, r)"), "r"); err == nil {
		t.Fatal("non-numeric sum value accepted")
	}
}
