// Package probdb implements tuple-independent probabilistic databases and
// the §4.3 application of the paper's results: exact query evaluation
// P(D ⊨ q) for CQ¬s via lifted inference when the query is hierarchical,
// extended by the ExoShap transformation to every self-join-free CQ¬
// without a non-hierarchical path with respect to the deterministic
// relations (Theorem 4.10, generalizing Fink and Olteanu's dichotomy).
//
// Probabilities are exact big.Rat values so that lifted inference can be
// validated bit-for-bit against possible-world enumeration.
package probdb

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/query"
)

// ErrBadProbability is returned for probabilities outside [0, 1].
var ErrBadProbability = errors.New("probdb: probability outside [0,1]")

var ratOne = big.NewRat(1, 1)

// ProbDatabase is a tuple-independent probabilistic database: each fact is
// present independently with its probability. Facts with probability 1 are
// deterministic (the analogue of the paper's exogenous facts).
type ProbDatabase struct {
	d     *db.Database
	probs map[string]*big.Rat
}

// New returns an empty probabilistic database.
func New() *ProbDatabase {
	return &ProbDatabase{d: db.New(), probs: make(map[string]*big.Rat)}
}

// Add inserts fact f with probability p ∈ [0, 1].
func (pd *ProbDatabase) Add(f db.Fact, p *big.Rat) error {
	if p.Sign() < 0 || p.Cmp(ratOne) > 0 {
		return fmt.Errorf("%w: %s for %s", ErrBadProbability, p.RatString(), f)
	}
	if err := pd.d.Add(f, p.Cmp(ratOne) < 0); err != nil {
		return err
	}
	pd.probs[f.Key()] = new(big.Rat).Set(p)
	return nil
}

// MustAdd is Add that panics on error.
func (pd *ProbDatabase) MustAdd(f db.Fact, p *big.Rat) {
	if err := pd.Add(f, p); err != nil {
		panic(err)
	}
}

// AddDeterministic inserts a fact with probability 1.
func (pd *ProbDatabase) AddDeterministic(f db.Fact) error { return pd.Add(f, ratOne) }

// Facts returns all facts in insertion order.
func (pd *ProbDatabase) Facts() []db.Fact { return pd.d.Facts() }

// Prob returns the probability of f (0 if absent).
func (pd *ProbDatabase) Prob(f db.Fact) *big.Rat {
	if p, ok := pd.probs[f.Key()]; ok {
		return new(big.Rat).Set(p)
	}
	return new(big.Rat)
}

// NumFacts returns the number of stored facts.
func (pd *ProbDatabase) NumFacts() int { return pd.d.NumFacts() }

// UncertainFacts returns the facts with probability strictly between 0 and 1.
func (pd *ProbDatabase) UncertainFacts() []db.Fact {
	var out []db.Fact
	for _, f := range pd.d.Facts() {
		p := pd.probs[f.Key()]
		if p.Sign() > 0 && p.Cmp(ratOne) < 0 {
			out = append(out, f)
		}
	}
	return out
}

// RelationDeterministic reports whether every fact of rel has probability 1.
func (pd *ProbDatabase) RelationDeterministic(rel string) bool {
	for _, f := range pd.d.RelationFacts(rel) {
		if pd.probs[f.Key()].Cmp(ratOne) < 0 {
			return false
		}
	}
	return true
}

// maxWorldFacts caps the possible-world enumeration.
const maxWorldFacts = 20

// BruteForceProbability computes P(D ⊨ q) by enumerating the 2^u possible
// worlds over the uncertain facts (the validation oracle).
func BruteForceProbability(pd *ProbDatabase, q query.BooleanQuery) (*big.Rat, error) {
	uncertain := pd.UncertainFacts()
	if len(uncertain) > maxWorldFacts {
		return nil, fmt.Errorf("probdb: %d uncertain facts exceed the enumeration limit of %d", len(uncertain), maxWorldFacts)
	}
	certain := db.New()
	for _, f := range pd.d.Facts() {
		if pd.probs[f.Key()].Cmp(ratOne) == 0 {
			certain.MustAddExo(f)
		}
	}
	total := new(big.Rat)
	for mask := 0; mask < 1<<uint(len(uncertain)); mask++ {
		world := certain.Clone()
		weight := big.NewRat(1, 1)
		for i, f := range uncertain {
			p := pd.probs[f.Key()]
			if mask&(1<<uint(i)) != 0 {
				world.MustAddExo(f)
				weight.Mul(weight, p)
			} else {
				weight.Mul(weight, new(big.Rat).Sub(ratOne, p))
			}
		}
		if q.Eval(world) {
			total.Add(total, weight)
		}
	}
	return total, nil
}

// LiftedProbability computes P(D ⊨ q) in polynomial time for a hierarchical
// self-join-free CQ¬ by the lifted-inference recursion (independent-AND
// across connected components, independent-OR across root-variable values,
// literal probabilities at the ground base case). This mirrors the CntSat
// recursion of the Shapley algorithm — the paper's §4.3 observation.
func LiftedProbability(pd *ProbDatabase, q *query.CQ) (*big.Rat, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.HasSelfJoin() {
		return nil, core.ErrNotSelfJoinFree
	}
	if !q.IsHierarchical() {
		return nil, core.ErrNotHierarchical
	}
	return lifted(pd, q)
}

func lifted(pd *ProbDatabase, q *query.CQ) (*big.Rat, error) {
	// Keep only facts that can be the image of their relation's atom.
	atomOf := make(map[string]query.Atom)
	for _, a := range q.Atoms {
		atomOf[a.Rel] = a
	}
	relevant := New()
	for _, f := range pd.d.Facts() {
		if a, ok := atomOf[f.Rel]; ok && query.MatchesAtom(a, f) {
			relevant.MustAdd(f, pd.probs[f.Key()])
		}
	}
	return liftedCore(relevant, q)
}

func liftedCore(pd *ProbDatabase, q *query.CQ) (*big.Rat, error) {
	comps := q.AtomComponents()
	if len(comps) > 1 {
		// Components touch disjoint relations: independent conjunction.
		out := big.NewRat(1, 1)
		for _, comp := range comps {
			sub := q.SubQuery(comp)
			rels := make(map[string]bool)
			for _, a := range sub.Atoms {
				rels[a.Rel] = true
			}
			subPD := New()
			for _, f := range pd.d.Facts() {
				if rels[f.Rel] {
					subPD.MustAdd(f, pd.probs[f.Key()])
				}
			}
			p, err := lifted(subPD, sub)
			if err != nil {
				return nil, err
			}
			out.Mul(out, p)
		}
		return out, nil
	}

	if len(q.Vars()) == 0 {
		// Ground conjunction of literals over distinct relations:
		// independent product.
		out := big.NewRat(1, 1)
		for _, a := range q.Atoms {
			p := pd.Prob(a.GroundFact())
			if a.Negated {
				out.Mul(out, new(big.Rat).Sub(ratOne, p))
			} else {
				out.Mul(out, p)
			}
			if out.Sign() == 0 {
				return out, nil
			}
		}
		return out, nil
	}

	roots := q.RootVariables()
	if len(roots) == 0 {
		return nil, core.ErrNotHierarchical
	}
	x := roots[0]
	posOf := make(map[string]int)
	for _, a := range q.Atoms {
		for i, t := range a.Args {
			if t.IsVar() && t.Var == x {
				posOf[a.Rel] = i
				break
			}
		}
	}
	buckets := make(map[db.Const]*ProbDatabase)
	var values []db.Const
	for _, f := range pd.d.Facts() {
		v := f.Args[posOf[f.Rel]]
		if buckets[v] == nil {
			buckets[v] = New()
			values = append(values, v)
		}
		buckets[v].MustAdd(f, pd.probs[f.Key()])
	}
	// q = ∨_v q[x→v] over independent buckets: P = 1 − ∏ (1 − P_v).
	allFail := big.NewRat(1, 1)
	for _, v := range values {
		pv, err := lifted(buckets[v], q.SubstituteVar(x, v))
		if err != nil {
			return nil, err
		}
		allFail.Mul(allFail, new(big.Rat).Sub(ratOne, pv))
	}
	return new(big.Rat).Sub(ratOne, allFail), nil
}

// EvalWithDeterministic computes P(D ⊨ q) for a self-join-free CQ¬ q that
// has no non-hierarchical path with respect to the deterministic relations
// X (Theorem 4.10): the ExoShap transformation is applied with the
// deterministic facts playing the exogenous role, and lifted inference runs
// on the transformed hierarchical instance. Every relation in X must be
// deterministic in the data.
func EvalWithDeterministic(pd *ProbDatabase, q *query.CQ, deterministic map[string]bool) (*big.Rat, error) {
	for rel := range deterministic {
		if !pd.RelationDeterministic(rel) {
			return nil, fmt.Errorf("%w: %s", core.ErrExoViolated, rel)
		}
	}
	// Reuse the ExoShap pipeline: deterministic ↔ exogenous,
	// probabilistic ↔ endogenous.
	d2, q2, _, err := core.ExoShapTransform(pd.d, q, deterministic)
	if err != nil {
		return nil, err
	}
	out := New()
	for _, f := range d2.Facts() {
		if d2.IsEndogenous(f) {
			out.MustAdd(f, pd.probs[f.Key()])
		} else if err := out.AddDeterministic(f); err != nil {
			return nil, err
		}
	}
	return LiftedProbability(out, q2)
}
