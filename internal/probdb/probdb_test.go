package probdb

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/combinat"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/query"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestAddValidation(t *testing.T) {
	pd := New()
	if err := pd.Add(db.F("R", "a"), rat(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := pd.Add(db.F("R", "a"), rat(1, 2)); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := pd.Add(db.F("R", "b"), rat(3, 2)); !errors.Is(err, ErrBadProbability) {
		t.Fatalf("p>1 accepted: %v", err)
	}
	if err := pd.Add(db.F("R", "c"), rat(-1, 2)); !errors.Is(err, ErrBadProbability) {
		t.Fatalf("p<0 accepted: %v", err)
	}
	if pd.Prob(db.F("R", "a")).Cmp(rat(1, 2)) != 0 {
		t.Fatal("stored probability wrong")
	}
	if pd.Prob(db.F("Z", "z")).Sign() != 0 {
		t.Fatal("absent fact should have probability 0")
	}
}

func TestUncertainAndDeterministic(t *testing.T) {
	pd := New()
	pd.MustAdd(db.F("R", "a"), rat(1, 2))
	pd.MustAdd(db.F("R", "b"), rat(1, 1))
	pd.MustAdd(db.F("S", "c"), rat(0, 1))
	if n := len(pd.UncertainFacts()); n != 1 {
		t.Fatalf("uncertain facts = %d, want 1", n)
	}
	if pd.RelationDeterministic("R") {
		t.Fatal("R has an uncertain fact")
	}
	if !pd.RelationDeterministic("T") {
		t.Fatal("empty relation is vacuously deterministic")
	}
}

func TestLiftedSingleAtom(t *testing.T) {
	// q() :- R(x): P = 1 − ∏(1−p_i).
	q := query.MustParse("q() :- R(x)")
	pd := New()
	pd.MustAdd(db.F("R", "a"), rat(1, 2))
	pd.MustAdd(db.F("R", "b"), rat(1, 3))
	got, err := LiftedProbability(pd, q)
	if err != nil {
		t.Fatal(err)
	}
	want := rat(2, 3) // 1 − (1/2)(2/3)
	if got.Cmp(want) != 0 {
		t.Fatalf("P = %s, want %s", got.RatString(), want.RatString())
	}
}

func TestLiftedNegation(t *testing.T) {
	// q() :- R(x), ¬S(x): per value v, P_v = p(R(v))·(1−p(S(v))).
	q := query.MustParse("q() :- R(x), !S(x)")
	pd := New()
	pd.MustAdd(db.F("R", "a"), rat(1, 2))
	pd.MustAdd(db.F("S", "a"), rat(1, 4))
	got, err := LiftedProbability(pd, q)
	if err != nil {
		t.Fatal(err)
	}
	want := rat(3, 8)
	if got.Cmp(want) != 0 {
		t.Fatalf("P = %s, want %s", got.RatString(), want.RatString())
	}
}

var liftedQueries = []*query.CQ{
	query.MustParse("l1() :- R(x), S(x, y)"),
	query.MustParse("l2() :- R(x, y), !S(y)"),
	query.MustParse("l3() :- R(x), S(x, y), !T(x, y)"),
	query.MustParse("l4() :- R(x), !S(x), T(x, y), U(z)"),
	query.MustParse("l5() :- Stud(x), !TA(x), Reg(x, y)"),
}

func randomProbInstance(rng *rand.Rand, q *query.CQ, domSize, perRel int) *ProbDatabase {
	pd := New()
	dom := make([]db.Const, domSize)
	for i := range dom {
		dom[i] = db.Const(string(rune('a' + i)))
	}
	arity := make(map[string]int)
	for _, a := range q.Atoms {
		arity[a.Rel] = len(a.Args)
	}
	for _, rel := range q.Relations() {
		for i := 0; i < perRel; i++ {
			args := make([]db.Const, arity[rel])
			for j := range args {
				args[j] = dom[rng.Intn(domSize)]
			}
			f := db.Fact{Rel: rel, Args: args}
			if pd.d.Contains(f) {
				continue
			}
			pd.MustAdd(f, rat(int64(rng.Intn(5)), 4)) // 0, 1/4, 1/2, 3/4, 1
		}
	}
	return pd
}

func TestLiftedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, q := range liftedQueries {
		for trial := 0; trial < 12; trial++ {
			pd := randomProbInstance(rng, q, 3, 4)
			if len(pd.UncertainFacts()) > 14 {
				continue
			}
			fast, err := LiftedProbability(pd, q)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			slow, err := BruteForceProbability(pd, q)
			if err != nil {
				t.Fatal(err)
			}
			if fast.Cmp(slow) != 0 {
				t.Fatalf("%s: lifted %s != brute %s", q, fast.RatString(), slow.RatString())
			}
		}
	}
}

func TestLiftedRejections(t *testing.T) {
	pd := New()
	pd.MustAdd(db.F("R", "a"), rat(1, 2))
	if _, err := LiftedProbability(pd, query.MustParse("q() :- R(x), S(x, y), T(y)")); !errors.Is(err, core.ErrNotHierarchical) {
		t.Fatalf("want ErrNotHierarchical, got %v", err)
	}
	if _, err := LiftedProbability(pd, query.MustParse("q() :- R(x, y), !R(y, x)")); !errors.Is(err, core.ErrNotSelfJoinFree) {
		t.Fatalf("want ErrNotSelfJoinFree, got %v", err)
	}
}

// Bridge property: for endogenous facts with p = 1/2 and exogenous with
// p = 1, P(D ⊨ q) = Σ_k |Sat(D,q,k)| / 2^m — the lifted engine and the
// Shapley counting engine must agree exactly.
func TestLiftedMatchesSatCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, q := range liftedQueries {
		for trial := 0; trial < 6; trial++ {
			d := db.New()
			dom := []db.Const{"a", "b", "c"}
			arity := make(map[string]int)
			for _, a := range q.Atoms {
				arity[a.Rel] = len(a.Args)
			}
			for _, rel := range q.Relations() {
				for i := 0; i < 3; i++ {
					args := make([]db.Const, arity[rel])
					for j := range args {
						args[j] = dom[rng.Intn(3)]
					}
					f := db.Fact{Rel: rel, Args: args}
					if !d.Contains(f) {
						d.MustAdd(f, rng.Intn(2) == 0)
					}
				}
			}
			sat, err := core.SatCountVector(d, q)
			if err != nil {
				t.Fatal(err)
			}
			m := d.NumEndo()
			want := new(big.Rat).SetFrac(combinat.SumVector(sat), new(big.Int).Lsh(big.NewInt(1), uint(m)))

			pd := New()
			for _, f := range d.Facts() {
				if d.IsEndogenous(f) {
					pd.MustAdd(f, rat(1, 2))
				} else {
					pd.MustAdd(f, rat(1, 1))
				}
			}
			got, err := LiftedProbability(pd, q)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("%s: lifted %s != Σsat/2^m %s\nDB:\n%s", q, got.RatString(), want.RatString(), d)
			}
		}
	}
}

func TestEvalWithDeterministicTheorem410(t *testing.T) {
	// q2 with deterministic Stud and Course: no non-hierarchical path, so
	// evaluation is polynomial; cross-check against world enumeration.
	q2 := query.MustParse("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)")
	deterministic := map[string]bool{"Stud": true, "Course": true}
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 8; trial++ {
		pd := New()
		dom := []db.Const{"a", "b", "c"}
		for _, c := range dom {
			if rng.Intn(2) == 0 {
				pd.MustAdd(db.NewFact("Stud", c), rat(1, 1))
			}
			if rng.Intn(2) == 0 {
				pd.MustAdd(db.NewFact("TA", c), rat(int64(1+rng.Intn(3)), 4))
			}
			for _, c2 := range dom {
				if rng.Intn(3) == 0 {
					pd.MustAdd(db.NewFact("Reg", c, c2), rat(int64(1+rng.Intn(3)), 4))
				}
			}
			if rng.Intn(2) == 0 {
				pd.MustAdd(db.NewFact("Course", c, "CS"), rat(1, 1))
			}
		}
		fast, err := EvalWithDeterministic(pd, q2, deterministic)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := BruteForceProbability(pd, q2)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Cmp(slow) != 0 {
			t.Fatalf("Theorem 4.10 evaluation %s != brute %s", fast.RatString(), slow.RatString())
		}
	}
}

func TestEvalWithDeterministicRejectsHardQuery(t *testing.T) {
	// §4.1's q' keeps its non-hierarchical path with X = {S, P} and must be
	// rejected (its evaluation is FP#P-complete).
	qp := query.MustParse("qp() :- !R(x, w), S(z, x), !P(z, y), T(y, w)")
	pd := New()
	pd.MustAdd(db.F("R", "a", "b"), rat(1, 2))
	pd.MustAdd(db.F("T", "a", "b"), rat(1, 2))
	pd.MustAdd(db.F("S", "a", "b"), rat(1, 1))
	pd.MustAdd(db.F("P", "a", "b"), rat(1, 1))
	if _, err := EvalWithDeterministic(pd, qp, map[string]bool{"S": true, "P": true}); !errors.Is(err, core.ErrIntractable) {
		t.Fatalf("want ErrIntractable, got %v", err)
	}
}

func TestEvalWithDeterministicChecksDeclaration(t *testing.T) {
	q := query.MustParse("q() :- Author(x, y), Pub(x, z)")
	pd := New()
	pd.MustAdd(db.F("Author", "a", "b"), rat(1, 2))
	pd.MustAdd(db.F("Pub", "a", "c"), rat(1, 2)) // not deterministic
	if _, err := EvalWithDeterministic(pd, q, map[string]bool{"Pub": true}); !errors.Is(err, core.ErrExoViolated) {
		t.Fatalf("want ErrExoViolated, got %v", err)
	}
}
