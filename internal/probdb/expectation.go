package probdb

import (
	"fmt"
	"math/big"

	"repro/internal/db"
	"repro/internal/query"
)

// Aggregate expectations over tuple-independent databases, by linearity of
// expectation: for a query q(x̄) with head variables and an aggregate
// α(D') = Σ over distinct answers ā of weight(ā),
//
//	E[α] = Σ_ā weight(ā) · P(D' ⊨ q[x̄→ā]),
//
// with the candidate answers drawn from the positive part of q over the
// structural database. Each grounded Boolean probability is computed by
// exact lifted inference, so q must be self-join-free and remain
// hierarchical after grounding (grounding only removes variables, so a
// hierarchical q always qualifies). This mirrors how the paper reduces
// aggregate Shapley values to Boolean ones (§3) and links it to the §4.3
// probabilistic reading.

// ExpectedCount returns E[#distinct answers of q].
func ExpectedCount(pd *ProbDatabase, q *query.CQ) (*big.Rat, error) {
	return expectedAggregate(pd, q, func([]db.Const) (*big.Rat, error) {
		return big.NewRat(1, 1), nil
	})
}

// ExpectedSum returns E[Σ over distinct answers of the numeric head
// variable sumVar].
func ExpectedSum(pd *ProbDatabase, q *query.CQ, sumVar string) (*big.Rat, error) {
	pos := -1
	for i, h := range q.Head {
		if h == sumVar {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("probdb: sum variable %s is not a head variable of %s", sumVar, q.Name())
	}
	return expectedAggregate(pd, q, func(row []db.Const) (*big.Rat, error) {
		w, ok := new(big.Rat).SetString(string(row[pos]))
		if !ok {
			return nil, fmt.Errorf("probdb: non-numeric value %q for sum variable %s", row[pos], sumVar)
		}
		return w, nil
	})
}

func expectedAggregate(pd *ProbDatabase, q *query.CQ, weight func([]db.Const) (*big.Rat, error)) (*big.Rat, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(q.Head) == 0 {
		return nil, fmt.Errorf("probdb: aggregate query %s must have head variables", q.Name())
	}
	posPart := q.SubQuery(q.Positive())
	posPart.Head = append([]string(nil), q.Head...)
	answers := posPart.Answers(pd.d)

	total := new(big.Rat)
	for _, row := range answers {
		ground := q.Clone()
		for i, x := range q.Head {
			ground = ground.SubstituteVar(x, row[i])
		}
		ground.Head = nil
		p, err := LiftedProbability(pd, ground)
		if err != nil {
			return nil, fmt.Errorf("probdb: grounded query %s: %w", ground, err)
		}
		w, err := weight(row)
		if err != nil {
			return nil, err
		}
		total.Add(total, new(big.Rat).Mul(w, p))
	}
	return total, nil
}

// BruteForceExpectedAggregate enumerates possible worlds and averages the
// aggregate directly (the validation oracle for the expectation API).
func BruteForceExpectedAggregate(pd *ProbDatabase, q *query.CQ, weight func([]db.Const) (*big.Rat, error)) (*big.Rat, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(q.Head) == 0 {
		return nil, fmt.Errorf("probdb: aggregate query %s must have head variables", q.Name())
	}
	uncertain := pd.UncertainFacts()
	if len(uncertain) > maxWorldFacts {
		return nil, fmt.Errorf("probdb: %d uncertain facts exceed the enumeration limit", len(uncertain))
	}
	certain := db.New()
	for _, f := range pd.d.Facts() {
		if pd.probs[f.Key()].Cmp(ratOne) == 0 {
			certain.MustAddExo(f)
		}
	}
	total := new(big.Rat)
	for mask := 0; mask < 1<<uint(len(uncertain)); mask++ {
		world := certain.Clone()
		prob := big.NewRat(1, 1)
		for i, f := range uncertain {
			p := pd.probs[f.Key()]
			if mask&(1<<uint(i)) != 0 {
				world.MustAddExo(f)
				prob.Mul(prob, p)
			} else {
				prob.Mul(prob, new(big.Rat).Sub(ratOne, p))
			}
		}
		agg := new(big.Rat)
		for _, row := range q.Answers(world) {
			w, err := weight(row)
			if err != nil {
				return nil, err
			}
			agg.Add(agg, w)
		}
		total.Add(total, agg.Mul(agg, prob))
	}
	return total, nil
}

// WeightOne is the Count weight function.
func WeightOne([]db.Const) (*big.Rat, error) { return big.NewRat(1, 1), nil }
