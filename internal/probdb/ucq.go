package probdb

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/query"
)

// ErrUCQNotDisjoint mirrors core.ErrUCQNotDisjoint for probabilistic
// evaluation.
var ErrUCQNotDisjoint = errors.New("probdb: UCQ disjuncts share relation symbols; exact lifted evaluation requires pairwise relation-disjoint disjuncts")

// LiftedProbabilityUCQ computes P(D ⊨ u) exactly for a union of
// hierarchical self-join-free CQ¬s with pairwise disjoint relation sets:
// the disjuncts are then independent events over the tuple-independent
// distribution, so P(∨ qi) = 1 − Π (1 − P(qi)).
func LiftedProbabilityUCQ(pd *ProbDatabase, u *query.UCQ) (*big.Rat, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	seen := make(map[string]int)
	for i, q := range u.Disjuncts {
		for _, rel := range q.Relations() {
			if j, dup := seen[rel]; dup && j != i {
				return nil, fmt.Errorf("%w: %s", ErrUCQNotDisjoint, rel)
			}
			seen[rel] = i
		}
	}
	allFail := big.NewRat(1, 1)
	for _, q := range u.Disjuncts {
		p, err := LiftedProbability(pd, q)
		if err != nil {
			return nil, fmt.Errorf("probdb: disjunct %s: %w", q.Name(), err)
		}
		allFail.Mul(allFail, new(big.Rat).Sub(ratOne, p))
	}
	return new(big.Rat).Sub(ratOne, allFail), nil
}
