package probdb

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/query"
)

func TestLiftedUCQAgainstBrute(t *testing.T) {
	u := query.MustParseUCQ(`
qa() :- R(x), !S(x)
qb() :- U(x, y)`)
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 10; trial++ {
		pd := New()
		dom := []db.Const{"a", "b", "c"}
		for _, c := range dom {
			if rng.Intn(2) == 0 {
				pd.MustAdd(db.NewFact("R", c), rat(int64(rng.Intn(5)), 4))
			}
			if rng.Intn(2) == 0 {
				pd.MustAdd(db.NewFact("S", c), rat(int64(rng.Intn(5)), 4))
			}
			for _, c2 := range dom {
				if rng.Intn(4) == 0 {
					pd.MustAdd(db.NewFact("U", c, c2), rat(int64(rng.Intn(5)), 4))
				}
			}
		}
		fast, err := LiftedProbabilityUCQ(pd, u)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := BruteForceProbability(pd, u)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Cmp(slow) != 0 {
			t.Fatalf("UCQ lifted %s != brute %s", fast.RatString(), slow.RatString())
		}
	}
}

func TestLiftedUCQRejectsSharedRelations(t *testing.T) {
	u := query.MustParseUCQ("qa() :- R(x) | qb() :- R(x), S(x)")
	pd := New()
	pd.MustAdd(db.F("R", "a"), rat(1, 2))
	if _, err := LiftedProbabilityUCQ(pd, u); !errors.Is(err, ErrUCQNotDisjoint) {
		t.Fatalf("want ErrUCQNotDisjoint, got %v", err)
	}
}

func TestLiftedUCQSingleDisjunct(t *testing.T) {
	u := query.MustParseUCQ("qa() :- R(x), !S(x)")
	pd := New()
	pd.MustAdd(db.F("R", "a"), rat(1, 2))
	pd.MustAdd(db.F("S", "a"), rat(1, 4))
	got, err := LiftedProbabilityUCQ(pd, u)
	if err != nil {
		t.Fatal(err)
	}
	want, err := LiftedProbability(pd, u.Disjuncts[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("single disjunct union %s != CQ %s", got.RatString(), want.RatString())
	}
}
