package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/query"
)

// routerShapleyRequest mirrors the worker's shapley request body — the
// router must understand it to coalesce and scatter; bodies it cannot
// decode forward verbatim so the worker owns the error message.
type routerShapleyRequest struct {
	Query      string   `json:"query"`
	Fact       string   `json:"fact,omitempty"`
	Facts      []string `json:"facts,omitempty"`
	Mode       string   `json:"mode,omitempty"`
	Offset     int      `json:"offset,omitempty"`
	Limit      int      `json:"limit,omitempty"`
	Workers    int      `json:"workers,omitempty"`
	Exo        []string `json:"exo,omitempty"`
	BruteForce bool     `json:"brute_force,omitempty"`
	Rank       bool     `json:"rank,omitempty"`
}

// workerShapleyResponse is the worker's response schema with payloads
// held raw: the router re-assembles responses from these fields in the
// worker's exact field order and encoder settings, so a routed answer is
// byte-identical to a direct one.
type workerShapleyResponse struct {
	Database string            `json:"database"`
	Version  json.RawMessage   `json:"version"`
	Query    string            `json:"query"`
	Method   string            `json:"method"`
	Cache    string            `json:"cache"`
	Value    json.RawMessage   `json:"value,omitempty"`
	Values   []json.RawMessage `json:"values,omitzero"`
	Trace    json.RawMessage   `json:"trace,omitempty"`
}

// canonicalQuery renders the request query exactly like the worker's
// parse (a one-disjunct union is a CQ), so coalescing keys — and the
// batched request the window sends — agree with what the worker answers.
func canonicalQuery(src string) (string, error) {
	u, err := query.ParseUCQ(src)
	if err != nil {
		return "", err
	}
	if len(u.Disjuncts) == 1 {
		return u.Disjuncts[0].String(), nil
	}
	return u.String(), nil
}

func (rt *Router) handleShapley(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ds, ok := rt.lookupDB(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no database %q", id))
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	var req routerShapleyRequest
	if err := decodeJSONBody(body, &req); err != nil {
		// Not a body the router understands: let the worker reject it so
		// error text matches the single-process server exactly.
		rt.relayToOwner(w, r, http.MethodPost, body)
		return
	}
	if req.Mode == "all" {
		if wantsNDJSON(r) {
			rt.scatterStream(w, r, ds, &req)
			return
		}
		rt.scatterAll(w, r, ds, &req, body)
		return
	}
	canonical, cerr := canonicalQuery(req.Query)
	if req.Mode != "" || cerr != nil || req.Fact == "" || len(req.Facts) > 0 ||
		req.Offset != 0 || req.Limit != 0 {
		// Validation errors, explicit fact batches, and anything else the
		// window cannot merge: one owning replica handles it whole.
		rt.relayToOwner(w, r, http.MethodPost, body)
		return
	}
	f, ferr := db.ParseFact(req.Fact)
	if ferr != nil {
		rt.relayToOwner(w, r, http.MethodPost, body)
		return
	}
	if obs.RecorderFrom(r.Context()) != nil {
		// Traced requests bypass the window: coalescing would attribute
		// one worker trace to several callers. The direct path still
		// grafts the remote hop under worker.call.
		rt.tracedSingleFact(w, r, ds, body)
		return
	}
	if rt.opts.CoalesceWindow < 0 {
		rt.relayToOwner(w, r, http.MethodPost, body)
		return
	}
	rt.coalesceSingleFact(w, r, ds, &req, canonical, f.Key())
}

func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// tracedSingleFact forwards one single-fact request directly (with
// failover), then rewrites the response trace: the worker's span tree is
// grafted under this request's worker.call span and the router's own
// trace replaces it in the body — ?trace=1 through the router shows the
// full path, remote hop included.
func (rt *Router) tracedSingleFact(w http.ResponseWriter, r *http.Request, ds *routedDB, body []byte) {
	for i, ws := range rt.liveOwners(ds) {
		if i > 0 {
			rt.failovers.Add(1)
		}
		status, respBody, err := rt.workerJSON(r.Context(), ws, http.MethodPost, r.URL.Path, nil, body)
		if err != nil || status >= 500 {
			continue
		}
		var resp workerShapleyResponse
		if status == http.StatusOK && json.Unmarshal(respBody, &resp) == nil {
			if rec := obs.RecorderFrom(r.Context()); rec != nil {
				if tb, err := json.Marshal(rec.Finish()); err == nil {
					resp.Trace = tb
				}
			}
			writeJSON(w, status, resp)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_, _ = w.Write(respBody)
		return
	}
	writeError(w, http.StatusBadGateway, "no_replicas", fmt.Sprintf("no replica of %q is reachable", ds.id))
}

// factResult is the complete per-caller response of a coalesced
// single-fact request.
type factResult struct {
	status int
	body   []byte
}

// factBatch is one open single-fact merge window: concurrent requests
// for the same (database, version, query, exo, brute, workers) that
// arrive within the window merge into one batched "facts" request — one
// plan lookup and one toggle sweep on the worker regardless of how many
// clients asked.
type factBatch struct {
	ds        *routedDB
	path      string
	canonical string
	exo       []string
	brute     bool
	workers   int

	timer   *time.Timer
	facts   []string // unique normalized fact keys, arrival order
	waiters map[string][]chan factResult
	n       int
}

// coalesceSingleFact parks the request in the window batch for its key
// (opening one if none is pending) and waits for the merged result.
func (rt *Router) coalesceSingleFact(w http.ResponseWriter, r *http.Request, ds *routedDB, req *routerShapleyRequest, canonical, factKey string) {
	exo := append([]string(nil), req.Exo...)
	sort.Strings(exo)
	ds.mu.RLock()
	version := ds.version
	ds.mu.RUnlock()
	key := fmt.Sprintf("%s\x00v%d\x00%s\x00%s\x00%t\x00%d",
		ds.id, version, canonical, strings.Join(exo, ","), req.BruteForce, req.Workers)

	ch := make(chan factResult, 1)
	rt.fmu.Lock()
	b, open := rt.factBatches[key]
	if !open {
		b = &factBatch{
			ds:        ds,
			path:      dbPath(ds.id) + "/shapley",
			canonical: canonical,
			exo:       req.Exo,
			brute:     req.BruteForce,
			workers:   req.Workers,
			waiters:   map[string][]chan factResult{},
		}
		rt.factBatches[key] = b
		b.timer = time.AfterFunc(rt.opts.CoalesceWindow, func() {
			rt.fmu.Lock()
			if rt.factBatches[key] == b {
				delete(rt.factBatches, key)
			}
			rt.fmu.Unlock()
			rt.runFactBatch(b)
		})
	}
	if _, dup := b.waiters[factKey]; !dup {
		b.facts = append(b.facts, factKey)
	}
	b.waiters[factKey] = append(b.waiters[factKey], ch)
	b.n++
	rt.fmu.Unlock()

	res := <-ch
	if res.body == nil {
		writeError(w, http.StatusBadGateway, "no_replicas", fmt.Sprintf("no replica of %q is reachable", ds.id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// runFactBatch executes one flushed window: a single batched request to
// one owning replica (failing over down the owner list), whose values
// split back into per-caller single-fact responses.
func (rt *Router) runFactBatch(b *factBatch) {
	if n := int64(b.n) - 1; n > 0 {
		rt.coalescedWindow.Add(n)
	}
	reqBody, _ := json.Marshal(routerShapleyRequest{
		Query:      b.canonical,
		Facts:      b.facts,
		Workers:    b.workers,
		Exo:        b.exo,
		BruteForce: b.brute,
	})
	//repolint:allow ctxflow: the merged batch serves many callers at once — it must not die with whichever caller's context happens to cancel first
	ctx := context.Background()
	for i, ws := range rt.liveOwners(b.ds) {
		if i > 0 {
			rt.failovers.Add(1)
		}
		status, respBody, err := rt.workerJSON(ctx, ws, http.MethodPost, b.path, nil, reqBody)
		if err != nil || status >= 500 {
			continue
		}
		if status != http.StatusOK {
			// One caller's bad fact must not fail the innocent rest of the
			// window — and the worker's batch errors are fact-prefixed,
			// unlike its single-fact ones. Degrade to uncoalesced per-fact
			// forwards so each caller gets exactly the response a direct
			// single-fact request would produce.
			rt.perFactFallback(ctx, b)
			return
		}
		var resp workerShapleyResponse
		if json.Unmarshal(respBody, &resp) != nil || len(resp.Values) != len(b.facts) {
			continue
		}
		for i, fk := range b.facts {
			var v struct {
				Fact string `json:"fact"`
			}
			_ = json.Unmarshal(resp.Values[i], &v)
			if v.Fact != fk {
				// Order disagreement would misattribute values; fall back
				// hard rather than guess.
				rt.perFactFallback(ctx, b)
				return
			}
			single := workerShapleyResponse{
				Database: resp.Database,
				Version:  resp.Version,
				Query:    resp.Query,
				Method:   resp.Method,
				Cache:    resp.Cache,
				Value:    resp.Values[i],
			}
			body, err := encodeIndented(single)
			res := factResult{status: http.StatusOK, body: body}
			if err != nil {
				res = factResult{}
			}
			for _, ch := range b.waiters[fk] {
				ch <- res
			}
		}
		return
	}
	b.deliverAll(factResult{})
}

// perFactFallback answers each distinct fact of a poisoned batch with
// its own uncoalesced request.
func (rt *Router) perFactFallback(ctx context.Context, b *factBatch) {
	for _, fk := range b.facts {
		reqBody, _ := json.Marshal(routerShapleyRequest{
			Query:      b.canonical,
			Fact:       fk,
			Workers:    b.workers,
			Exo:        b.exo,
			BruteForce: b.brute,
		})
		res := factResult{}
		for i, ws := range rt.liveOwners(b.ds) {
			if i > 0 {
				rt.failovers.Add(1)
			}
			status, respBody, err := rt.workerJSON(ctx, ws, http.MethodPost, b.path, nil, reqBody)
			if err != nil || status >= 500 {
				continue
			}
			res = factResult{status: status, body: respBody}
			break
		}
		for _, ch := range b.waiters[fk] {
			ch <- res
		}
	}
}

func (b *factBatch) deliverAll(res factResult) {
	for _, chans := range b.waiters {
		for _, ch := range chans {
			ch <- res
		}
	}
}

// encodeIndented matches the worker's writeJSON encoder byte for byte.
func encodeIndented(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// endoCount asks a replica how many endogenous facts the database has
// (the scatter denominator).
func (rt *Router) endoCount(ctx context.Context, ds *routedDB, ws *workerState) (int, error) {
	status, body, err := rt.workerJSON(ctx, ws, http.MethodGet, dbPath(ds.id), nil, nil)
	if err != nil {
		return 0, err
	}
	if status != http.StatusOK {
		return 0, fmt.Errorf("status %d", status)
	}
	var info struct {
		Endogenous int `json:"endogenous"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		return 0, err
	}
	return info.Endogenous, nil
}

// factRange is one scatter unit of a mode=all batch.
type factRange struct {
	offset, limit int
	primary       int // index into the live-owner list
}

// splitRanges cuts [0, n) into one contiguous range per replica.
func splitRanges(n, replicas int) []factRange {
	if replicas > n {
		replicas = n
	}
	out := make([]factRange, 0, replicas)
	base, rem := n/replicas, n%replicas
	off := 0
	for i := 0; i < replicas; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, factRange{offset: off, limit: size, primary: i})
		off += size
	}
	return out
}

// scatterAll serves buffered mode=all by fanning disjoint fact ranges
// across the database's live replicas and concatenating the gathered
// values in database order — the response body is byte-identical to one
// worker computing the whole batch, but the sweep runs replication-wide.
// The db read lock holds for the whole gather so no coalesced PATCH can
// land between ranges.
func (rt *Router) scatterAll(w http.ResponseWriter, r *http.Request, ds *routedDB, req *routerShapleyRequest, body []byte) {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	live := rt.liveOwners(ds)
	if len(live) == 0 {
		writeError(w, http.StatusBadGateway, "no_replicas", fmt.Sprintf("no replica of %q is reachable", ds.id))
		return
	}
	endo := 0
	var cerr error
	if len(live) > 1 && !req.Rank && req.Offset == 0 && req.Limit == 0 {
		endo, cerr = rt.endoCount(r.Context(), ds, live[0])
	}
	if len(live) == 1 || req.Rank || req.Offset != 0 || req.Limit != 0 || cerr != nil || endo < 2 {
		// Nothing to scatter (or ranking, which needs the whole batch in
		// one place): one replica computes it all, relayed verbatim.
		rt.relayToOwner(w, r, http.MethodPost, body)
		return
	}

	ranges := splitRanges(endo, len(live))
	type rangeResult struct {
		resp       workerShapleyResponse
		rejectCode int // non-zero: a worker 4xx to relay verbatim
		rejectBody []byte
		err        error
	}
	results := make([]rangeResult, len(ranges))
	var wg sync.WaitGroup
	for i, rg := range ranges {
		wg.Add(1)
		go func(i int, rg factRange) {
			defer wg.Done()
			sub := *req
			sub.Offset, sub.Limit = rg.offset, rg.limit
			subBody, _ := json.Marshal(sub)
			var lastErr error = fmt.Errorf("no replica reachable")
			for n := 0; n < len(live); n++ {
				if n > 0 {
					rt.failovers.Add(1)
				}
				ws := live[(rg.primary+n)%len(live)]
				status, respBody, err := rt.workerJSON(r.Context(), ws, http.MethodPost, b64path(ds), nil, subBody)
				if err != nil {
					lastErr = err
					continue
				}
				if status >= 500 {
					lastErr = fmt.Errorf("range [%d,+%d) status %d: %s", rg.offset, rg.limit, status, respBody)
					continue
				}
				if status != http.StatusOK {
					// A request-level rejection (bad exo set, unservable
					// query) repeats on every replica: relay the worker's
					// own error so the routed response matches a direct one.
					results[i] = rangeResult{rejectCode: status, rejectBody: respBody}
					return
				}
				var resp workerShapleyResponse
				if err := json.Unmarshal(respBody, &resp); err != nil {
					lastErr = err
					continue
				}
				results[i] = rangeResult{resp: resp}
				return
			}
			results[i] = rangeResult{err: lastErr}
		}(i, rg)
	}
	wg.Wait()

	for _, res := range results {
		if res.rejectCode != 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(res.rejectCode)
			_, _ = w.Write(res.rejectBody)
			return
		}
	}
	for _, res := range results {
		if res.err != nil {
			writeError(w, http.StatusBadGateway, "scatter_failed", res.err.Error())
			return
		}
	}
	head := results[0].resp
	merged := workerShapleyResponse{
		Database: head.Database,
		Version:  head.Version,
		Query:    head.Query,
		Method:   head.Method,
		Cache:    head.Cache,
		Values:   []json.RawMessage{},
	}
	for _, res := range results {
		if string(res.resp.Version) != string(head.Version) {
			// The ranges answered for different versions: someone wrote to
			// a replica behind the router's back. Refuse rather than splice
			// inconsistent values.
			writeError(w, http.StatusBadGateway, "version_skew",
				fmt.Sprintf("replicas answered for versions %s and %s", head.Version, res.resp.Version))
			return
		}
		merged.Values = append(merged.Values, res.resp.Values...)
	}
	if rec := obs.RecorderFrom(r.Context()); rec != nil {
		if tb, err := json.Marshal(rec.Finish()); err == nil {
			merged.Trace = tb
		}
	}
	writeJSON(w, http.StatusOK, merged)
}

func b64path(ds *routedDB) string { return dbPath(ds.id) + "/shapley" }

// ndjsonLine classifies one worker stream line.
type ndjsonLine struct {
	Done   bool            `json:"done"`
	Count  int             `json:"count"`
	Error  string          `json:"error"`
	Fact   string          `json:"fact"`
	Method string          `json:"method"`
	Trace  json.RawMessage `json:"trace"`
}

// rangeEvent is what a range streamer emits: a value line, or the
// range's terminal state.
type rangeEvent struct {
	value   []byte // one NDJSON value line (without newline), when non-nil
	head    []byte // the worker head line, emitted first
	version string
	done    bool
	err     error
}

// versionSkewError marks a failover resume that reached a replica
// answering for a different version than the range started at: splicing
// its values into the stream would silently mix versions, so the range
// aborts instead of retrying further peers.
type versionSkewError struct{ want, got string }

func (e *versionSkewError) Error() string {
	return fmt.Sprintf("version skew on failover resume: stream at %s, replica answered for %s", e.want, e.got)
}

// sendEvent delivers ev unless the scatter has been cancelled. The
// consumer stops draining when it aborts the response early (version
// skew, range error), so an unconditional send on a full channel would
// park this producer — and its open worker response body — forever; the
// scatter's defer cancel() is what unblocks it.
func sendEvent(ctx context.Context, out chan<- rangeEvent, ev rangeEvent) bool {
	select {
	case out <- ev:
		return true
	case <-ctx.Done():
		return false
	}
}

// scatterStream serves streaming mode=all: every live replica computes
// its disjoint fact range concurrently, and the router re-streams the
// ranges' value lines in database order — head first, then range 0's
// values as they arrive, then range 1's, ..., then one merged trailer. A
// replica dying mid-range fails over to a peer, resuming at the exact
// offset the stream had reached, so the client sees an uninterrupted
// stream (the failover is visible only in the router's metrics).
func (rt *Router) scatterStream(w http.ResponseWriter, r *http.Request, ds *routedDB, req *routerShapleyRequest) {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	live := rt.liveOwners(ds)
	if len(live) == 0 {
		writeError(w, http.StatusBadGateway, "no_replicas", fmt.Sprintf("no replica of %q is reachable", ds.id))
		return
	}
	endo, err := rt.endoCount(r.Context(), ds, live[0])
	if err != nil {
		writeError(w, http.StatusBadGateway, "no_replicas", err.Error())
		return
	}
	var ranges []factRange
	if req.Offset != 0 || req.Limit != 0 {
		// A pre-sliced request (another router?) streams as one range.
		ranges = []factRange{{offset: req.Offset, limit: req.Limit, primary: 0}}
	} else if endo == 0 {
		ranges = []factRange{{offset: 0, limit: 0, primary: 0}}
	} else {
		ranges = splitRanges(endo, len(live))
	}

	chans := make([]chan rangeEvent, len(ranges))
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	for i, rg := range ranges {
		chans[i] = make(chan rangeEvent, 64)
		go rt.streamRange(ctx, ds, req, rg, live, chans[i])
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	writeLine := func(line []byte) {
		_, _ = w.Write(line)
		_, _ = w.Write([]byte("\n"))
		flush()
	}

	headWritten := false
	headVersion := ""
	total := 0
	for i := range chans {
		for ev := range chans[i] {
			switch {
			case ev.head != nil:
				if !headWritten {
					headWritten = true
					headVersion = ev.version
					writeLine(ev.head)
				} else if ev.version != headVersion {
					writeLine(mustJSON(errorBody{Error: fmt.Sprintf(
						"version skew mid-stream: %s then %s", headVersion, ev.version), Kind: "version_skew"}))
					return
				}
			case ev.value != nil:
				writeLine(ev.value)
				total++
			case ev.err != nil:
				kind := "scatter_failed"
				var skew *versionSkewError
				if errors.As(ev.err, &skew) {
					kind = "version_skew"
				}
				// No trailer: its absence tells the client the batch did
				// not finish, exactly like a single worker's mid-stream
				// failure.
				writeLine(mustJSON(errorBody{Error: ev.err.Error(), Kind: kind}))
				return
			}
		}
	}
	trailer := map[string]any{"done": true, "count": total}
	if rec := obs.RecorderFrom(r.Context()); rec != nil {
		trailer["trace"] = rec.Finish()
	}
	writeLine(mustJSON(trailer))
}

func mustJSON(v any) []byte {
	b, _ := json.Marshal(v)
	return b
}

// streamRange pumps one fact range's NDJSON lines into out, failing over
// to peer replicas on mid-stream errors: each retry re-requests only the
// not-yet-delivered suffix (offset advanced by the values already
// emitted), so a failover never duplicates or drops a value.
func (rt *Router) streamRange(ctx context.Context, ds *routedDB, req *routerShapleyRequest, rg factRange, live []*workerState, out chan<- rangeEvent) {
	defer close(out)
	consumed := 0
	version := ""
	var lastErr error = fmt.Errorf("no replica reachable")
	for attempt := 0; attempt < len(live); attempt++ {
		if ctx.Err() != nil {
			return // the scatter aborted; nobody is draining events
		}
		if attempt > 0 {
			rt.failovers.Add(1)
		}
		ws := live[(rg.primary+attempt)%len(live)]
		sub := *req
		sub.Offset = rg.offset + consumed
		sub.Limit = rg.limit - consumed
		if rg.limit == 0 && rg.offset == 0 && consumed > 0 {
			// Full-batch range resumed mid-way: express the suffix.
			sub.Offset = consumed
			sub.Limit = 0
		}
		if sub.Limit < 0 {
			break
		}
		subBody, _ := json.Marshal(sub)
		resp, sp, err := rt.callWorker(ctx, ws, http.MethodPost, b64path(ds), nil, subBody,
			"application/json", http.Header{"Accept": []string{"application/x-ndjson"}})
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK || !strings.Contains(resp.Header.Get("Content-Type"), "ndjson") {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			sp.End()
			lastErr = fmt.Errorf("range [%d,+%d) status %d: %s", rg.offset, rg.limit, resp.StatusCode, bytes.TrimSpace(body))
			if resp.StatusCode >= 400 && resp.StatusCode < 500 {
				break
			}
			continue
		}
		finished, n, err := rt.pumpRange(ctx, resp.Body, sp, consumed == 0, &version, out)
		resp.Body.Close()
		sp.End()
		consumed += n
		if finished {
			return
		}
		if ctx.Err() != nil {
			return
		}
		lastErr = err
		if lastErr == nil {
			lastErr = fmt.Errorf("worker %s ended the stream without a trailer", ws.name)
		}
		var skew *versionSkewError
		if errors.As(lastErr, &skew) {
			// Not transient: any peer either agrees with the skewed replica
			// (and skews again) or with the values already delivered at the
			// old version — a resume can no longer be consistent.
			break
		}
	}
	sendEvent(ctx, out, rangeEvent{err: lastErr})
}

// pumpRange relays one worker NDJSON response: the head line (forwarded
// only for the first attempt of a range — resumed attempts re-emit
// values, not heads, but every attempt's head is still version-checked
// against the range's first so a failover never splices values computed
// at another version), then value lines, until the trailer (finished)
// or a break. It returns how many value lines it forwarded.
func (rt *Router) pumpRange(ctx context.Context, body io.Reader, sp *obs.Span, wantHead bool, version *string, out chan<- rangeEvent) (finished bool, values int, err error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	first := true
	for sc.Scan() {
		line := append([]byte(nil), bytes.TrimSpace(sc.Bytes())...)
		if len(line) == 0 {
			continue
		}
		var probe ndjsonLine
		if err := json.Unmarshal(line, &probe); err != nil {
			return false, values, fmt.Errorf("undecodable stream line: %w", err)
		}
		switch {
		case first && probe.Fact == "" && !probe.Done && probe.Error == "":
			// The head line.
			first = false
			var head struct {
				Version json.RawMessage `json:"version"`
			}
			_ = json.Unmarshal(line, &head)
			if *version == "" {
				*version = string(head.Version)
			} else if got := string(head.Version); got != *version {
				return false, values, &versionSkewError{want: *version, got: got}
			}
			if wantHead {
				if !sendEvent(ctx, out, rangeEvent{head: line, version: *version}) {
					return false, values, ctx.Err()
				}
			}
		case probe.Error != "":
			return false, values, fmt.Errorf("worker stream error: %s", probe.Error)
		case probe.Done:
			if sp.Recording() && probe.Trace != nil {
				var tr obs.Trace
				if json.Unmarshal(probe.Trace, &tr) == nil {
					sp.AdoptRemote(tr.Root)
				}
			}
			return true, values, nil
		default:
			first = false
			if !sendEvent(ctx, out, rangeEvent{value: line}) {
				return false, values, ctx.Err()
			}
			values++
		}
	}
	return false, values, sc.Err()
}
