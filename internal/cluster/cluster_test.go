// End-to-end cluster tests: real shapleyd workers behind real HTTP
// listeners, fronted by a Router exercised in-process. The core
// obligation is differential: any answer obtained through the router
// must be byte-identical to the same request against a single-process
// server — across plan families, after PATCH deltas, and after a forced
// replica failover.
package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/paperex"
	"repro/internal/server"
)

// workerProxy fronts one worker server so tests can simulate crashes
// (dead: the TCP connection is severed, which the router sees as a
// transport error) and mid-stream failures (truncate: NDJSON shapley
// streams stop after two value lines, no trailer).
type workerProxy struct {
	inner    http.Handler
	dead     atomic.Bool
	truncate atomic.Bool
	patches  atomic.Int64 // PATCH requests that reached this worker
}

func (p *workerProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPatch {
		p.patches.Add(1)
	}
	if p.dead.Load() {
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("workerProxy: response writer is not a Hijacker")
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
		return
	}
	if p.truncate.Load() && r.Method == http.MethodPost &&
		strings.HasSuffix(r.URL.Path, "/shapley") &&
		strings.Contains(r.Header.Get("Accept"), "ndjson") {
		rec := httptest.NewRecorder()
		p.inner.ServeHTTP(rec, r)
		lines := bytes.Split(bytes.TrimSpace(rec.Body.Bytes()), []byte("\n"))
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(rec.Code)
		for i, ln := range lines {
			if i >= 3 { // head + two values, then vanish without a trailer
				return
			}
			_, _ = w.Write(ln)
			_, _ = w.Write([]byte("\n"))
		}
		return
	}
	p.inner.ServeHTTP(w, r)
}

type testWorker struct {
	name  string
	srv   *server.Server
	proxy *workerProxy
	hs    *httptest.Server
}

type testCluster struct {
	rt      *cluster.Router
	workers map[string]*testWorker
}

// newCluster starts n workers and a router over them. Probing is off by
// default (ProbeInterval < 0) so tests control health transitions via
// request outcomes; pass probe > 0 to exercise the prober.
func newCluster(t *testing.T, n, replication int, window, probe time.Duration) *testCluster {
	t.Helper()
	cfg := &cluster.Config{Replication: replication}
	tc := &testCluster{workers: map[string]*testWorker{}}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("w%d", i+1)
		srv := server.New(server.Options{})
		proxy := &workerProxy{inner: srv}
		hs := httptest.NewServer(proxy)
		t.Cleanup(hs.Close)
		tc.workers[name] = &testWorker{name: name, srv: srv, proxy: proxy, hs: hs}
		cfg.Workers = append(cfg.Workers, cluster.Worker{Name: name, URL: hs.URL})
	}
	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Config:         cfg,
		CoalesceWindow: window,
		ProbeInterval:  probe,
		ProbeTimeout:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Close)
	tc.rt = rt
	return tc
}

// doRaw issues one request against a handler and returns the raw
// recorder — bodies are compared byte-for-byte, so nothing re-decodes
// them on the way out.
func doRaw(t *testing.T, h http.Handler, method, path string, body []byte, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

const uniQ1 = "q1() :- Stud(x), !TA(x), Reg(x, y)"

func registerUni(t *testing.T, h http.Handler) {
	t.Helper()
	body := mustMarshal(t, map[string]any{"id": "uni", "text": paperex.UniversityDBText})
	rec := doRaw(t, h, "POST", "/v1/databases", body, nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("register: status %d: %s", rec.Code, rec.Body.String())
	}
}

// normalizeCache rewrites the "cache" report in a response body so
// post-failover comparisons ignore it: whether the surviving replica's
// plan cache was warm is per-process state, not part of the answer.
func normalizeCache(b []byte) []byte {
	b = bytes.ReplaceAll(b, []byte(`"cache": "hit"`), []byte(`"cache": "?"`))
	b = bytes.ReplaceAll(b, []byte(`"cache": "miss"`), []byte(`"cache": "?"`))
	b = bytes.ReplaceAll(b, []byte(`"cache":"hit"`), []byte(`"cache":"?"`))
	return bytes.ReplaceAll(b, []byte(`"cache":"miss"`), []byte(`"cache":"?"`))
}

// TestRoutedBitIdentical is the differential harness: one direct
// single-process server and a 3-worker replication-2 cluster receive the
// same request sequence, and every response body must match byte for
// byte — across the hierarchical, ExoShap, UCQ¬ and brute-force plan
// families, for single facts, fact batches, buffered and streamed
// mode=all, and ranked batches; then again after a PATCH delta; then
// (cache report aside) after the primary replica is killed mid-fleet.
func TestRoutedBitIdentical(t *testing.T) {
	direct := server.New(server.Options{})
	tc := newCluster(t, 3, 2, time.Millisecond, -1)
	registerUni(t, direct)
	registerUni(t, tc.rt)

	type step struct {
		name string
		body map[string]any
		ndj  bool
	}
	steps := []step{
		{"hier-single", map[string]any{"query": uniQ1, "fact": "TA(Adam)"}, false},
		{"hier-all", map[string]any{"query": uniQ1, "mode": "all"}, false},
		{"hier-stream", map[string]any{"query": uniQ1, "mode": "all"}, true},
		{"hier-rank", map[string]any{"query": uniQ1, "mode": "all", "rank": true}, false},
		{"hier-batch", map[string]any{"query": uniQ1, "facts": []string{"TA(Adam)", "Reg(Adam,OS)"}}, false},
		{"exo-single", map[string]any{"query": uniQ1, "fact": "TA(Adam)", "exo": []string{"Reg"}}, false},
		{"exo-all", map[string]any{"query": uniQ1, "mode": "all", "exo": []string{"Reg"}}, false},
		{"ucq-single", map[string]any{"query": "q() :- Stud(x), !TA(x), Reg(x, y) | q() :- TA(x), Reg(x, y)", "fact": "TA(Adam)"}, false},
		{"ucq-all", map[string]any{"query": "q() :- Stud(x), !TA(x), Reg(x, y) | q() :- TA(x), Reg(x, y)", "mode": "all"}, false},
		{"brute-single", map[string]any{"query": uniQ1, "fact": "TA(Adam)", "brute_force": true}, false},
		{"brute-all", map[string]any{"query": uniQ1, "mode": "all", "brute_force": true}, false},
		{"bad-mode", map[string]any{"query": uniQ1, "mode": "nope"}, false},
		{"bad-fact", map[string]any{"query": uniQ1, "fact": "NoSuch(zz)"}, false},
	}
	runSteps := func(phase string, normalize bool) {
		t.Helper()
		for _, st := range steps {
			body := mustMarshal(t, st.body)
			var hdr map[string]string
			if st.ndj {
				hdr = map[string]string{"Accept": "application/x-ndjson"}
			}
			want := doRaw(t, direct, "POST", "/v1/databases/uni/shapley", body, hdr)
			got := doRaw(t, tc.rt, "POST", "/v1/databases/uni/shapley", body, hdr)
			if got.Code != want.Code {
				t.Fatalf("%s/%s: status %d via router, %d direct (%s vs %s)",
					phase, st.name, got.Code, want.Code, got.Body.String(), want.Body.String())
			}
			wb, gb := want.Body.Bytes(), got.Body.Bytes()
			if normalize {
				wb, gb = normalizeCache(wb), normalizeCache(gb)
			}
			if !bytes.Equal(wb, gb) {
				t.Fatalf("%s/%s: routed response differs from direct:\nrouter: %s\ndirect: %s",
					phase, st.name, gb, wb)
			}
		}
	}

	runSteps("v1", false)

	patch := mustMarshal(t, map[string]any{"remove": []string{"Reg(Adam,OS)"}, "add_endo": []string{"Reg(Bob, DB)"}})
	wantP := doRaw(t, direct, "PATCH", "/v1/databases/uni", patch, nil)
	gotP := doRaw(t, tc.rt, "PATCH", "/v1/databases/uni", patch, nil)
	if wantP.Code != http.StatusOK || gotP.Code != http.StatusOK {
		t.Fatalf("patch: direct %d, routed %d", wantP.Code, gotP.Code)
	}
	runSteps("v2-after-patch", false)

	// Kill the primary replica of "uni": the next requests must fail over
	// to the surviving owner and still produce the same answers (the
	// surviving replica's cache-temperature report is its own business).
	primary := tc.rt.Ring().Owners("uni")[0]
	tc.workers[primary].proxy.dead.Store(true)
	runSteps("v2-after-failover", true)
	if tc.rt.Failovers() == 0 {
		t.Fatal("failovers counter never moved though the primary replica is dead")
	}
}

// TestCoalescingWindowSingleSweep pins the tentpole economics: K
// concurrent identical single-fact requests inside one window must cost
// the worker exactly one value computation (one plan lookup, one toggle
// sweep), with every caller receiving an identical, correct response.
func TestCoalescingWindowSingleSweep(t *testing.T) {
	tc := newCluster(t, 1, 1, 300*time.Millisecond, -1)
	registerUni(t, tc.rt)

	const K = 8
	body := mustMarshal(t, map[string]any{"query": uniQ1, "fact": "TA(Adam)"})
	bodies := make([][]byte, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := doRaw(t, tc.rt, "POST", "/v1/databases/uni/shapley", body, nil)
			if rec.Code == http.StatusOK {
				bodies[i] = rec.Body.Bytes()
			}
		}(i)
	}
	wg.Wait()

	w1 := tc.workers["w1"]
	if got := w1.srv.ValuesComputed(); got != 1 {
		t.Fatalf("worker computed %d values for %d coalesced identical requests, want 1", got, K)
	}
	if got := tc.rt.CoalescedWindow(); got != K-1 {
		t.Fatalf("CoalescedWindow = %d, want %d", got, K-1)
	}
	for i := 0; i < K; i++ {
		if bodies[i] == nil {
			t.Fatalf("request %d failed", i)
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("caller %d saw a different body:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	var resp struct {
		Value struct {
			Shapley string `json:"shapley"`
		} `json:"value"`
	}
	if err := json.Unmarshal(bodies[0], &resp); err != nil {
		t.Fatal(err)
	}
	if want := paperex.Example23Values["TA(Adam)"]; resp.Value.Shapley != want {
		t.Fatalf("coalesced Shapley(TA(Adam)) = %s, want %s", resp.Value.Shapley, want)
	}
}

// TestCoalescingWindowDistinctFacts: distinct facts in one window merge
// into one batched sweep — still one plan preparation, one sweep of
// exactly the requested facts — and each caller gets its own fact's value.
func TestCoalescingWindowDistinctFacts(t *testing.T) {
	tc := newCluster(t, 1, 1, 300*time.Millisecond, -1)
	registerUni(t, tc.rt)

	facts := []string{"TA(Adam)", "Reg(Adam,OS)", "TA(Ben)", "Reg(Ben,OS)"}
	type result struct {
		fact string
		body []byte
	}
	results := make([]result, len(facts))
	var wg sync.WaitGroup
	for i, f := range facts {
		wg.Add(1)
		go func(i int, f string) {
			defer wg.Done()
			body := mustMarshal(t, map[string]any{"query": uniQ1, "fact": f})
			rec := doRaw(t, tc.rt, "POST", "/v1/databases/uni/shapley", body, nil)
			if rec.Code == http.StatusOK {
				results[i] = result{fact: f, body: rec.Body.Bytes()}
			}
		}(i, f)
	}
	wg.Wait()

	for i, res := range results {
		if res.body == nil {
			t.Fatalf("request %d failed", i)
		}
		var resp struct {
			Value struct {
				Fact    string `json:"fact"`
				Shapley string `json:"shapley"`
			} `json:"value"`
		}
		if err := json.Unmarshal(res.body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Value.Fact != res.fact {
			t.Fatalf("caller for %s received value for %s", res.fact, resp.Value.Fact)
		}
		if want := paperex.Example23Values[res.fact]; resp.Value.Shapley != want {
			t.Fatalf("Shapley(%s) = %s, want %s", res.fact, resp.Value.Shapley, want)
		}
	}
	if got := tc.rt.CoalescedWindow(); got != int64(len(facts))-1 {
		t.Fatalf("CoalescedWindow = %d, want %d", got, len(facts)-1)
	}
}

// TestPatchCoalescingAndReplayOrdering: a burst of concurrent PATCH
// deltas must leave every replica with an identical database — same
// fingerprint, same version — regardless of how the burst was merged
// into windows, and a subsequent routed mode=all must agree with a
// direct server that applied the same net delta.
func TestPatchCoalescingAndReplayOrdering(t *testing.T) {
	tc := newCluster(t, 3, 3, 50*time.Millisecond, -1)
	registerUni(t, tc.rt)

	// Disjoint deltas: any merge or serialization of these yields the
	// same database, so every request must succeed.
	deltas := []map[string]any{
		{"add_endo": []string{"Reg(Bob, DB)"}},
		{"add_endo": []string{"Reg(Esra, DB)"}},
		{"remove": []string{"Reg(Adam,OS)"}},
		{"add_exo": []string{"Stud(Dan)"}},
		{"add_endo": []string{"TA(Dan)"}},
	}
	var wg sync.WaitGroup
	for _, d := range deltas {
		wg.Add(1)
		go func(d map[string]any) {
			defer wg.Done()
			rec := doRaw(t, tc.rt, "PATCH", "/v1/databases/uni", mustMarshal(t, d), nil)
			if rec.Code != http.StatusOK {
				t.Errorf("patch %v: status %d: %s", d, rec.Code, rec.Body.String())
			}
		}(d)
	}
	wg.Wait()

	// Every replica converged to the same database.
	type info struct {
		Version     int    `json:"version"`
		Fingerprint string `json:"fingerprint"`
		Facts       int    `json:"facts"`
	}
	replicasAgree := func() info {
		t.Helper()
		var ref *info
		for name, w := range tc.workers {
			rec := doRaw(t, w.srv, "GET", "/v1/databases/uni", nil, nil)
			if rec.Code != http.StatusOK {
				t.Fatalf("worker %s: GET uni: %d", name, rec.Code)
			}
			var in info
			if err := json.Unmarshal(rec.Body.Bytes(), &in); err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = &in
				continue
			}
			if in != *ref {
				t.Fatalf("replica %s diverged: %+v vs %+v", name, in, *ref)
			}
		}
		return *ref
	}
	replicasAgree()

	// The converged state equals a direct server that applied the same
	// net delta (order of the disjoint deltas is immaterial).
	direct := server.New(server.Options{})
	registerUni(t, direct)
	net := mustMarshal(t, map[string]any{
		"add_endo": []string{"Reg(Bob, DB)", "Reg(Esra, DB)", "TA(Dan)"},
		"add_exo":  []string{"Stud(Dan)"},
		"remove":   []string{"Reg(Adam,OS)"},
	})
	if rec := doRaw(t, direct, "PATCH", "/v1/databases/uni", net, nil); rec.Code != http.StatusOK {
		t.Fatalf("direct patch: %d: %s", rec.Code, rec.Body.String())
	}
	q := mustMarshal(t, map[string]any{"query": uniQ1, "mode": "all"})
	want := doRaw(t, direct, "POST", "/v1/databases/uni/shapley", q, nil)
	got := doRaw(t, tc.rt, "POST", "/v1/databases/uni/shapley", q, nil)
	type vals struct {
		Values []struct {
			Fact    string `json:"fact"`
			Shapley string `json:"shapley"`
		} `json:"values"`
	}
	var wv, gv vals
	if err := json.Unmarshal(want.Body.Bytes(), &wv); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(got.Body.Bytes(), &gv); err != nil {
		t.Fatal(err)
	}
	if len(wv.Values) == 0 || len(wv.Values) != len(gv.Values) {
		t.Fatalf("value count: direct %d, routed %d", len(wv.Values), len(gv.Values))
	}
	// Fact enumeration order is insertion order, which differs between
	// one merged delta and a sequence of windows — compare by fact.
	wantBy := map[string]string{}
	for _, v := range wv.Values {
		wantBy[v.Fact] = v.Shapley
	}
	for _, v := range gv.Values {
		if want, ok := wantBy[v.Fact]; !ok || want != v.Shapley {
			t.Fatalf("Shapley(%s) = %s routed, %s direct", v.Fact, v.Shapley, want)
		}
	}

	// Conflicting pair: two concurrent deltas touching the same fact must
	// never merge — whichever serialization wins, one may be rejected, but
	// every replica must still apply the identical sequence and converge.
	var cg sync.WaitGroup
	for _, d := range []map[string]any{
		{"remove": []string{"TA(Dan)"}},
		{"add_endo": []string{"TA(Eve)"}},
		{"remove": []string{"TA(Eve)"}}, // conflicts with the add
	} {
		cg.Add(1)
		go func(d map[string]any) {
			defer cg.Done()
			doRaw(t, tc.rt, "PATCH", "/v1/databases/uni", mustMarshal(t, d), nil)
		}(d)
	}
	cg.Wait()
	replicasAgree()
}

// TestFailoverMidStream: a replica dying partway through a mode=all
// NDJSON stream must be invisible to the client — the router resumes the
// interrupted fact range on a peer at the exact offset reached, so the
// client sees every value exactly once, in order, with a clean trailer.
func TestFailoverMidStream(t *testing.T) {
	tc := newCluster(t, 2, 2, time.Millisecond, -1)
	registerUni(t, tc.rt)

	primary := tc.rt.Ring().Owners("uni")[0]
	tc.workers[primary].proxy.truncate.Store(true)

	body := mustMarshal(t, map[string]any{"query": uniQ1, "mode": "all"})
	rec := doRaw(t, tc.rt, "POST", "/v1/databases/uni/shapley", body,
		map[string]string{"Accept": "application/x-ndjson"})
	if rec.Code != http.StatusOK {
		t.Fatalf("stream: status %d: %s", rec.Code, rec.Body.String())
	}
	lines := bytes.Split(bytes.TrimSpace(rec.Body.Bytes()), []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("stream too short: %s", rec.Body.String())
	}
	var head struct {
		Database string `json:"database"`
		Method   string `json:"method"`
	}
	if err := json.Unmarshal(lines[0], &head); err != nil || head.Database != "uni" {
		t.Fatalf("bad head line %s (%v)", lines[0], err)
	}
	seen := map[string]string{}
	for _, ln := range lines[1 : len(lines)-1] {
		var v struct {
			Fact    string `json:"fact"`
			Shapley string `json:"shapley"`
		}
		if err := json.Unmarshal(ln, &v); err != nil || v.Fact == "" {
			t.Fatalf("bad value line %s (%v)", ln, err)
		}
		if _, dup := seen[v.Fact]; dup {
			t.Fatalf("fact %s streamed twice across the failover", v.Fact)
		}
		seen[v.Fact] = v.Shapley
	}
	var trailer struct {
		Done  bool `json:"done"`
		Count int  `json:"count"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &trailer); err != nil || !trailer.Done {
		t.Fatalf("missing trailer, last line: %s", lines[len(lines)-1])
	}
	if trailer.Count != 8 || len(seen) != 8 {
		t.Fatalf("streamed %d values (trailer says %d), want all 8", len(seen), trailer.Count)
	}
	for fact, want := range paperex.Example23Values {
		if seen[fact] != want {
			t.Fatalf("Shapley(%s) = %s, want %s", fact, seen[fact], want)
		}
	}
	if tc.rt.Failovers() == 0 {
		t.Fatal("stream completed without recording the mid-stream failover")
	}
}

// TestTracePropagation: ?trace=1 through the router must show the
// cross-process path — the router's worker.call span with the worker's
// own span tree grafted beneath it — under one shared trace id.
func TestTracePropagation(t *testing.T) {
	tc := newCluster(t, 1, 1, time.Millisecond, -1)
	registerUni(t, tc.rt)

	body := mustMarshal(t, map[string]any{"query": uniQ1, "fact": "TA(Adam)"})
	rec := doRaw(t, tc.rt, "POST", "/v1/databases/uni/shapley?trace=1", body,
		map[string]string{"X-Trace-Id": "trace-cluster-0001"})
	if rec.Code != http.StatusOK {
		t.Fatalf("traced request: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Trace-Id"); got != "trace-cluster-0001" {
		t.Fatalf("router did not honor inbound trace id: %q", got)
	}
	var resp struct {
		Trace struct {
			TraceID string          `json:"trace_id"`
			Root    json.RawMessage `json:"root"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace.TraceID != "trace-cluster-0001" {
		t.Fatalf("trace id in body = %q", resp.Trace.TraceID)
	}
	tree := string(resp.Trace.Root)
	if !strings.Contains(tree, "worker.call") {
		t.Fatalf("trace lacks the router's worker.call hop: %s", tree)
	}
	// The worker's own spans (plan lookup/preparation, the single-fact
	// compute) must appear as the remote subtree.
	if !strings.Contains(tree, "shapley.single") {
		t.Fatalf("trace lacks the worker-side remote subtree: %s", tree)
	}
}

// TestWorkerRecoveryWarmsReplica: a worker that was down while the fleet
// took writes must, on recovery, be warmed from a peer snapshot — same
// version, same fingerprint, and able to serve correct answers when its
// peer later dies — without recomputing plans from scratch.
func TestWorkerRecoveryWarmsReplica(t *testing.T) {
	tc := newCluster(t, 2, 2, time.Millisecond, 25*time.Millisecond)
	w1, w2 := tc.workers["w1"], tc.workers["w2"]

	// w2 crashes before the database exists anywhere.
	w2.proxy.dead.Store(true)
	registerUni(t, tc.rt)
	patch := mustMarshal(t, map[string]any{"add_endo": []string{"Reg(Bob, DB)"}})
	if rec := doRaw(t, tc.rt, "PATCH", "/v1/databases/uni", patch, nil); rec.Code != http.StatusOK {
		t.Fatalf("patch with one replica down: %d: %s", rec.Code, rec.Body.String())
	}
	// Prepare a plan on w1 so the warm-up ships it, not just the facts.
	q := mustMarshal(t, map[string]any{"query": uniQ1, "mode": "all"})
	if rec := doRaw(t, tc.rt, "POST", "/v1/databases/uni/shapley", q, nil); rec.Code != http.StatusOK {
		t.Fatalf("mode=all with one replica down: %d", rec.Code)
	}

	// w2 comes back; the prober should mark it up and warm it from w1.
	w2.proxy.dead.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec := doRaw(t, w2.srv, "GET", "/v1/databases/uni", nil, nil)
		if rec.Code == http.StatusOK {
			var in struct {
				Version int `json:"version"`
			}
			if json.Unmarshal(rec.Body.Bytes(), &in) == nil && in.Version == 2 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("w2 was never warmed (last: %d %s)", rec.Code, rec.Body.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Both replicas agree on the database identity.
	f1 := doRaw(t, w1.srv, "GET", "/v1/databases/uni", nil, nil).Body.String()
	f2 := doRaw(t, w2.srv, "GET", "/v1/databases/uni", nil, nil).Body.String()
	var i1, i2 struct {
		Version     int    `json:"version"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal([]byte(f1), &i1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(f2), &i2); err != nil {
		t.Fatal(err)
	}
	if i1 != i2 {
		t.Fatalf("replicas disagree after warm-up: %+v vs %+v", i1, i2)
	}
	// The snapshot carried the prepared plan: w2 answers from cache.
	rec := doRaw(t, w2.srv, "POST", "/v1/databases/uni/shapley", q, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("w2 after warm-up: %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"cache": "hit"`) {
		t.Fatalf("warmed replica should answer from the imported plan, got: %s", rec.Body.String())
	}

	// Now w1 dies; the warmed replica carries the database alone.
	w1.proxy.dead.Store(true)
	single := mustMarshal(t, map[string]any{"query": uniQ1, "fact": "TA(Adam)"})
	rec = doRaw(t, tc.rt, "POST", "/v1/databases/uni/shapley", single, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("routed request after losing w1: %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"version": 2`) {
		t.Fatalf("surviving replica served a stale version: %s", rec.Body.String())
	}
}

// TestRouterHealthReadyMetrics covers the router's own operational
// surface plus the worker-side readiness split.
func TestRouterHealthReadyMetrics(t *testing.T) {
	tc := newCluster(t, 2, 2, time.Millisecond, -1)

	rec := doRaw(t, tc.rt, "GET", "/healthz", nil, nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"role": "router"`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}
	if rec = doRaw(t, tc.rt, "GET", "/readyz", nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("readyz: %d %s", rec.Code, rec.Body.String())
	}
	tc.rt.SetDraining(true)
	if rec = doRaw(t, tc.rt, "GET", "/readyz", nil, nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: %d, want 503", rec.Code)
	}
	if rec = doRaw(t, tc.rt, "GET", "/healthz", nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200 (liveness is not readiness)", rec.Code)
	}
	tc.rt.SetDraining(false)

	rec = doRaw(t, tc.rt, "GET", "/metrics", nil, nil)
	for _, want := range []string{
		`shapleyd_coalesced_requests_total{kind="singleflight"}`,
		`shapleyd_coalesced_requests_total{kind="window"}`,
		`shapleyd_coalesced_requests_total{kind="patch"}`,
		`shapleyd_router_failovers_total`,
		`shapleyd_router_worker_up{worker="w1"} 1`,
		`shapleyd_router_worker_up{worker="w2"} 1`,
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("router /metrics lacks %q:\n%s", want, rec.Body.String())
		}
	}

	// Worker side: same family present (zeros included), and the
	// liveness/readiness split behaves identically.
	w1 := tc.workers["w1"]
	rec = doRaw(t, w1.srv, "GET", "/metrics", nil, nil)
	for _, want := range []string{
		`shapleyd_coalesced_requests_total{kind="singleflight"} 0`,
		`shapleyd_coalesced_requests_total{kind="window"} 0`,
		`shapleyd_coalesced_requests_total{kind="patch"} 0`,
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("worker /metrics lacks %q", want)
		}
	}
	if rec = doRaw(t, w1.srv, "GET", "/readyz", nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("worker readyz: %d", rec.Code)
	}
	w1.srv.SetDraining(true)
	if rec = doRaw(t, w1.srv, "GET", "/readyz", nil, nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("worker draining readyz: %d, want 503", rec.Code)
	}
	if rec = doRaw(t, w1.srv, "GET", "/healthz", nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("worker healthz while draining: %d, want 200", rec.Code)
	}
}

// TestRouterRegisterListDelete covers the database lifecycle through the
// router: ids pin to ring owners, listings merge replicas, deletes reach
// every owner.
func TestRouterRegisterListDelete(t *testing.T) {
	tc := newCluster(t, 3, 2, time.Millisecond, -1)
	registerUni(t, tc.rt)

	// Duplicate id refused at the router.
	body := mustMarshal(t, map[string]any{"id": "uni", "text": paperex.UniversityDBText})
	if rec := doRaw(t, tc.rt, "POST", "/v1/databases", body, nil); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate register: %d", rec.Code)
	}

	// The database landed on exactly its ring owners.
	owners := map[string]bool{}
	for _, o := range tc.rt.Ring().Owners("uni") {
		owners[o] = true
	}
	if len(owners) != 2 {
		t.Fatalf("owners: %v", owners)
	}
	for name, w := range tc.workers {
		rec := doRaw(t, w.srv, "GET", "/v1/databases/uni", nil, nil)
		if hasIt := rec.Code == http.StatusOK; hasIt != owners[name] {
			t.Fatalf("worker %s has uni=%v, ring owner=%v", name, hasIt, owners[name])
		}
	}

	// Listing shows the database once despite two replicas.
	rec := doRaw(t, tc.rt, "GET", "/v1/databases", nil, nil)
	if n := strings.Count(rec.Body.String(), `"id": "uni"`); n != 1 {
		t.Fatalf("listing shows uni %d times: %s", n, rec.Body.String())
	}

	if rec := doRaw(t, tc.rt, "DELETE", "/v1/databases/uni", nil, nil); rec.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", rec.Code)
	}
	for name, w := range tc.workers {
		if rec := doRaw(t, w.srv, "GET", "/v1/databases/uni", nil, nil); rec.Code != http.StatusNotFound {
			t.Fatalf("worker %s still has uni after delete: %d", name, rec.Code)
		}
	}
	if rec := doRaw(t, tc.rt, "POST", "/v1/databases/uni/shapley",
		mustMarshal(t, map[string]any{"query": uniQ1, "fact": "TA(Adam)"}), nil); rec.Code != http.StatusNotFound {
		t.Fatalf("shapley after delete: %d", rec.Code)
	}
}

// TestRouterSnapshotRoundTrip moves a database between fleets via the
// snapshot wire format: export through the router, import into a fresh
// cluster, and get identical answers with warm plan caches.
func TestRouterSnapshotRoundTrip(t *testing.T) {
	src := newCluster(t, 2, 2, time.Millisecond, -1)
	registerUni(t, src.rt)
	q := mustMarshal(t, map[string]any{"query": uniQ1, "mode": "all"})
	want := doRaw(t, src.rt, "POST", "/v1/databases/uni/shapley", q, nil)
	if want.Code != http.StatusOK {
		t.Fatalf("source mode=all: %d", want.Code)
	}

	rec := doRaw(t, src.rt, "GET", "/v1/databases/uni/snapshot", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("export: %d: %s", rec.Code, rec.Body.String())
	}
	raw, err := io.ReadAll(rec.Body)
	if err != nil {
		t.Fatal(err)
	}

	dst := newCluster(t, 2, 2, time.Millisecond, -1)
	if rec := doRaw(t, dst.rt, "PUT", "/v1/databases/uni/snapshot", raw, nil); rec.Code != http.StatusOK {
		t.Fatalf("import: %d: %s", rec.Code, rec.Body.String())
	}
	got := doRaw(t, dst.rt, "POST", "/v1/databases/uni/shapley", q, nil)
	if got.Code != http.StatusOK {
		t.Fatalf("destination mode=all: %d: %s", got.Code, got.Body.String())
	}
	// The imported plans serve from cache, so modulo the cache-state
	// report the answers are byte-identical.
	if !bytes.Equal(normalizeCache(want.Body.Bytes()), normalizeCache(got.Body.Bytes())) {
		t.Fatalf("migrated fleet answers differently:\nsrc: %s\ndst: %s", want.Body.String(), got.Body.String())
	}
}

// TestRegisterRejectedEverywhereLeavesNoPhantom: when every replica
// rejects a registration with a 4xx (unparsable database text), the
// router must relay the worker's rejection AND forget the id — no worker
// holds the database, so a corrected retry with the same id must succeed
// instead of bouncing off a phantom 409.
func TestRegisterRejectedEverywhereLeavesNoPhantom(t *testing.T) {
	tc := newCluster(t, 2, 2, time.Millisecond, -1)
	bad := mustMarshal(t, map[string]any{"id": "uni", "text": "this is not a database @@@"})
	rec := doRaw(t, tc.rt, "POST", "/v1/databases", bad, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("rejected register: status %d, want 400: %s", rec.Code, rec.Body.String())
	}
	// The corrected retry reuses the id; with a phantom entry this 409s.
	registerUni(t, tc.rt)
	if rec := doRaw(t, tc.rt, "GET", "/v1/databases/uni", nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("retried database is not routable: %d: %s", rec.Code, rec.Body.String())
	}
}

// TestDeleteKeepsRoutingEntryWhenNoReplicaAcks: a DELETE that no worker
// acknowledged (whole fleet transiently down) must not drop the routing
// entry — the data still lives on the workers, so the id must stay
// routable for a retry rather than stranding worker state behind a
// forgotten entry.
func TestDeleteKeepsRoutingEntryWhenNoReplicaAcks(t *testing.T) {
	tc := newCluster(t, 2, 2, time.Millisecond, -1)
	registerUni(t, tc.rt)
	for _, w := range tc.workers {
		w.proxy.dead.Store(true)
	}
	if rec := doRaw(t, tc.rt, "DELETE", "/v1/databases/uni", nil, nil); rec.Code != http.StatusBadGateway {
		t.Fatalf("delete with fleet down: status %d, want 502: %s", rec.Code, rec.Body.String())
	}
	for _, w := range tc.workers {
		w.proxy.dead.Store(false)
	}
	// The entry survived the failed delete: the retry reaches the workers
	// and completes. Had the router dropped it, this would 404.
	if rec := doRaw(t, tc.rt, "DELETE", "/v1/databases/uni", nil, nil); rec.Code != http.StatusNoContent {
		t.Fatalf("delete retry: status %d, want 204: %s", rec.Code, rec.Body.String())
	}
}

// TestPatchWindowFlushRunsOnce pins the run-once contract of the PATCH
// window: a batch claimed by a conflict flush while its timer callback
// is already firing must be applied exactly once. A nanosecond window
// plus concurrent conflicting deltas makes the timer-vs-flush race
// constant; double-applied batches show up as more PATCH forwards per
// worker than there were router-level requests.
func TestPatchWindowFlushRunsOnce(t *testing.T) {
	tc := newCluster(t, 2, 2, time.Nanosecond, -1)
	registerUni(t, tc.rt)

	const rounds = 40
	for i := 0; i < rounds; i++ {
		fact := fmt.Sprintf("Stud(R%d)", i)
		var wg sync.WaitGroup
		for j := 0; j < 2; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				// The pair shares a fact key, so the two deltas conflict and
				// the second forces a flush of the first's open window.
				d := map[string]any{"add_exo": []string{fact}}
				if j == 1 {
					d = map[string]any{"remove": []string{fact}}
				}
				doRaw(t, tc.rt, "PATCH", "/v1/databases/uni", mustMarshal(t, d), nil)
			}(j)
		}
		wg.Wait()
	}

	// Every request is at most its own batch, and each batch forwards one
	// PATCH per replica — so each worker sees at most 2*rounds forwards;
	// any excess means some batch ran twice.
	for name, w := range tc.workers {
		if got := w.proxy.patches.Load(); got > 2*rounds {
			t.Fatalf("worker %s saw %d PATCH forwards for %d requests: a window batch ran more than once", name, got, 2*rounds)
		}
	}
}

// bigDBText builds a database whose mode=all fact ranges are larger than
// the range channel buffer (64), so an aborted scatter leaves producers
// with pending lines — the regression surface for the goroutine leak.
func bigDBText() string {
	var sb strings.Builder
	sb.WriteString("endo TA(S000)\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "exo  Stud(S%03d)\n", i)
		fmt.Fprintf(&sb, "endo Reg(S%03d, C1)\n", i)
	}
	return sb.String()
}

// TestStreamResumeVersionSkew: a mid-stream failover that resumes on a
// replica answering for a different version must abort the stream with a
// version_skew error (never splice cross-version values), and the abort
// must not leak the other ranges' producer goroutines even though their
// channels are full and nobody drains them.
func TestStreamResumeVersionSkew(t *testing.T) {
	tc := newCluster(t, 2, 2, time.Millisecond, -1)
	body := mustMarshal(t, map[string]any{"id": "big", "text": bigDBText()})
	if rec := doRaw(t, tc.rt, "POST", "/v1/databases", body, nil); rec.Code != http.StatusCreated {
		t.Fatalf("register: %d: %s", rec.Code, rec.Body.String())
	}
	owners := tc.rt.Ring().Owners("big")
	primary, secondary := owners[0], owners[1]
	// Write to the secondary behind the router's back: its version moves
	// to 2 while the primary — and the router — stay at 1.
	patch := mustMarshal(t, map[string]any{"add_exo": []string{"Stud(Z999)"}})
	if rec := doRaw(t, tc.workers[secondary].srv, "PATCH", "/v1/databases/big", patch, nil); rec.Code != http.StatusOK {
		t.Fatalf("direct patch: %d: %s", rec.Code, rec.Body.String())
	}
	tc.workers[primary].proxy.truncate.Store(true)

	streamOnce := func() {
		t.Helper()
		rec := doRaw(t, tc.rt, "POST", "/v1/databases/big/shapley",
			mustMarshal(t, map[string]any{"query": uniQ1, "mode": "all"}),
			map[string]string{"Accept": "application/x-ndjson"})
		lines := bytes.Split(bytes.TrimSpace(rec.Body.Bytes()), []byte("\n"))
		// head + the two values delivered before the truncation + the error.
		if len(lines) != 4 {
			t.Fatalf("stream has %d lines, want 4: %s", len(lines), rec.Body.String())
		}
		var last struct {
			Done  bool   `json:"done"`
			Error string `json:"error"`
			Kind  string `json:"kind"`
		}
		if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
			t.Fatalf("bad terminal line %s (%v)", lines[len(lines)-1], err)
		}
		if last.Done || last.Kind != "version_skew" || !strings.Contains(last.Error, "failover resume") {
			t.Fatalf("stream must abort with a resume version_skew error, got: %s", lines[len(lines)-1])
		}
	}

	// Warm transports and take a goroutine baseline off one aborted stream.
	streamOnce()
	time.Sleep(200 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	const repeats = 6
	for i := 0; i < repeats; i++ {
		streamOnce()
	}
	// Un-drained ranges hold >64 pending lines; without ctx-aware channel
	// sends each aborted stream would pin its producer forever, so the
	// count would sit at least `repeats` above baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines never settled: baseline %d, now %d — range producers leaked", baseline, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}
