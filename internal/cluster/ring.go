package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring assigning keys (database ids) to
// replicated worker shards. Each worker contributes virtualNodes points
// hashed from "name#i"; a key's owners are the first `replication`
// distinct workers clockwise from the key's hash. The hash is FNV-1a 64
// — deterministic across processes and builds, so every router (and
// every test) derives the identical placement from the same worker list.
//
// The virtual-node construction gives the two properties the cluster
// leans on: load spreads evenly at realistic worker counts, and adding
// or removing one worker moves only the keys whose nearest points
// belonged to it (about 1/n of the keyspace), never reshuffling the
// rest — the rebalance test pins this.
//
// A Ring is immutable after New; membership changes build a new Ring.
type Ring struct {
	points      []ringPoint
	workers     []string
	replication int
}

type ringPoint struct {
	hash   uint64
	worker string
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// NewRing builds the ring. Replication is clamped to [1, len(workers)];
// virtualNodes to at least 1. Worker names must be unique and non-empty.
func NewRing(workers []string, virtualNodes, replication int) (*Ring, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one worker")
	}
	if virtualNodes < 1 {
		virtualNodes = 1
	}
	if replication < 1 {
		replication = 1
	}
	if replication > len(workers) {
		replication = len(workers)
	}
	seen := make(map[string]bool, len(workers))
	r := &Ring{
		points:      make([]ringPoint, 0, len(workers)*virtualNodes),
		workers:     append([]string(nil), workers...),
		replication: replication,
	}
	sort.Strings(r.workers)
	for _, w := range r.workers {
		if w == "" {
			return nil, fmt.Errorf("cluster: empty worker name")
		}
		if seen[w] {
			return nil, fmt.Errorf("cluster: duplicate worker name %q", w)
		}
		seen[w] = true
		for i := 0; i < virtualNodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", w, i)), worker: w})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare) break by name so placement
		// stays deterministic regardless of input order.
		return r.points[i].worker < r.points[j].worker
	})
	return r, nil
}

// Replication reports the effective (clamped) replication factor.
func (r *Ring) Replication() int { return r.replication }

// Workers returns the sorted member names.
func (r *Ring) Workers() []string { return append([]string(nil), r.workers...) }

// Owners returns the replication-many distinct workers owning key, in
// ring (priority) order: Owners(key)[0] is the primary replica, the rest
// are the failover order.
func (r *Ring) Owners(key string) []string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, r.replication)
	seen := make(map[string]bool, r.replication)
	for n := 0; n < len(r.points) && len(owners) < r.replication; n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			owners = append(owners, p.worker)
		}
	}
	return owners
}

// Owns reports whether worker is one of key's owners.
func (r *Ring) Owns(key, worker string) bool {
	for _, o := range r.Owners(key) {
		if o == worker {
			return true
		}
	}
	return false
}
