package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/paperex"
	"repro/internal/server"
)

func benchPost(b *testing.B, h http.Handler, path string, body []byte, want int) {
	b.Helper()
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != want {
		b.Errorf("POST %s: code %d, want %d: %s", path, rec.Code, want, rec.Body.String())
	}
}

// BenchmarkClusterSingleFact compares single-fact /shapley throughput served
// directly by one worker against the same load routed through the coalescing
// router. Under concurrency the router merges identical in-window requests
// into one worker sweep, so its per-request cost amortizes the extra hop;
// the direct path pays one toggle sweep per request.
func BenchmarkClusterSingleFact(b *testing.B) {
	regBody, err := json.Marshal(map[string]any{"id": "uni", "text": paperex.UniversityDBText})
	if err != nil {
		b.Fatal(err)
	}
	reqBody, err := json.Marshal(map[string]any{
		"query": "q1() :- Stud(x), !TA(x), Reg(x, y)",
		"fact":  "TA(Adam)",
	})
	if err != nil {
		b.Fatal(err)
	}
	hammer := func(b *testing.B, h http.Handler) {
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				benchPost(b, h, "/v1/databases/uni/shapley", reqBody, http.StatusOK)
			}
		})
	}

	b.Run("direct-worker", func(b *testing.B) {
		srv := server.New(server.Options{})
		benchPost(b, srv, "/v1/databases", regBody, http.StatusCreated)
		hammer(b, srv)
	})

	b.Run("router-coalesced", func(b *testing.B) {
		cfg := &cluster.Config{Replication: 2}
		for i := 1; i <= 3; i++ {
			hs := httptest.NewServer(server.New(server.Options{}))
			defer hs.Close()
			cfg.Workers = append(cfg.Workers, cluster.Worker{Name: fmt.Sprintf("w%d", i), URL: hs.URL})
		}
		rt, err := cluster.NewRouter(cluster.RouterOptions{
			Config:         cfg,
			CoalesceWindow: time.Millisecond,
			ProbeInterval:  -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		benchPost(b, rt, "/v1/databases", regBody, http.StatusCreated)
		hammer(b, rt)
	})
}
