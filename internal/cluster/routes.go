package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro/internal/db"
	"repro/internal/obs"
)

// dbPath returns the escaped worker path for a database id.
func dbPath(id string) string { return "/v1/databases/" + url.PathEscape(id) }

// decodeJSONBody decodes a request body strictly (unknown fields are the
// worker's business to reject; the router only decodes bodies it must
// understand to route or merge, and forwards anything else verbatim).
func decodeJSONBody(body []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

// handleRegister pins the new database id onto the ring and registers it
// on every owning replica. The first successful replica's response is
// relayed; replicas that fail are warmed asynchronously once healthy
// (the prober's recovery path), so a partial registration heals instead
// of diverging.
func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	var req struct {
		ID   string `json:"id,omitempty"`
		Text string `json:"text"`
	}
	if err := decodeJSONBody(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
		return
	}

	rt.mu.Lock()
	id := req.ID
	if id == "" {
		for {
			rt.seq++
			id = fmt.Sprintf("db-%d", rt.seq)
			if _, taken := rt.dbs[id]; !taken {
				break
			}
		}
	} else if _, exists := rt.dbs[id]; exists {
		rt.mu.Unlock()
		writeError(w, http.StatusConflict, "conflict", fmt.Sprintf("database %q is already registered", id))
		return
	}
	ds := &routedDB{id: id, owners: rt.ring.Owners(id), version: 1}
	ds.applyCond = sync.NewCond(&ds.pmu)
	rt.dbs[id] = ds
	rt.mu.Unlock()

	req.ID = id
	fwd, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	var (
		relayStatus int
		relayBody   []byte
		rejStatus   int
		rejBody     []byte
	)
	for _, name := range ds.owners {
		ws := rt.workerFor(name)
		status, respBody, err := rt.workerJSON(r.Context(), ws, http.MethodPost, "/v1/databases", nil, fwd)
		if err != nil || status >= 500 {
			continue
		}
		if status >= 400 {
			// The worker rejected the database itself (e.g. unparsable
			// text); remember the rejection but keep looking for a replica
			// that accepted.
			if rejBody == nil {
				rejStatus, rejBody = status, respBody
			}
			continue
		}
		if relayBody == nil {
			relayStatus, relayBody = status, respBody
		}
	}
	if relayBody == nil {
		// No worker actually registered the database: drop the routing
		// entry, or a corrected retry with the same id would bounce off a
		// phantom 409 forever.
		rt.mu.Lock()
		delete(rt.dbs, id)
		rt.mu.Unlock()
		if rejBody != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(rejStatus)
			_, _ = w.Write(rejBody)
			return
		}
		writeError(w, http.StatusBadGateway, "no_replicas", fmt.Sprintf("no replica of %v accepted the registration", ds.owners))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(relayStatus)
	_, _ = w.Write(relayBody)
}

// handleListDatabases merges the fleet's listings: each live worker
// reports the databases it holds; entries merge by id (replicas of one
// database appear once).
func (rt *Router) handleListDatabases(w http.ResponseWriter, r *http.Request) {
	type entry = json.RawMessage
	byID := map[string]entry{}
	for _, name := range rt.ring.Workers() {
		ws := rt.workerFor(name)
		if !ws.up.Load() {
			continue
		}
		status, body, err := rt.workerJSON(r.Context(), ws, http.MethodGet, "/v1/databases", nil, nil)
		if err != nil || status != http.StatusOK {
			continue
		}
		var list struct {
			Databases []json.RawMessage `json:"databases"`
		}
		if json.Unmarshal(body, &list) != nil {
			continue
		}
		for _, raw := range list.Databases {
			var info struct {
				ID string `json:"id"`
			}
			if json.Unmarshal(raw, &info) == nil && info.ID != "" {
				if _, seen := byID[info.ID]; !seen {
					byID[info.ID] = entry(raw)
				}
			}
		}
	}
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]json.RawMessage, len(ids))
	for i, id := range ids {
		out[i] = byID[id]
	}
	writeJSON(w, http.StatusOK, map[string]any{"databases": out})
}

// handleOwnerGet relays a GET to the first owning replica that answers,
// failing over down the owner list.
func (rt *Router) handleOwnerGet(w http.ResponseWriter, r *http.Request) {
	rt.relayToOwner(w, r, http.MethodGet, nil)
}

// handleOwnerPost relays a POST (classify, relevance, approx) to one
// owning replica; these are read-only against the registered database,
// so any replica's answer is authoritative.
func (rt *Router) handleOwnerPost(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	rt.relayToOwner(w, r, http.MethodPost, body)
}

func (rt *Router) relayToOwner(w http.ResponseWriter, r *http.Request, method string, body []byte) {
	id := r.PathValue("id")
	ds, ok := rt.lookupDB(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no database %q", id))
		return
	}
	var hdr http.Header
	if a := r.Header.Get("Accept"); a != "" {
		hdr = http.Header{"Accept": []string{a}}
	}
	first := true
	for _, ws := range rt.liveOwners(ds) {
		if !first {
			rt.failovers.Add(1)
		}
		first = false
		resp, sp, err := rt.callWorker(r.Context(), ws, method, r.URL.Path, nil, body, "application/json", hdr)
		if err != nil {
			continue
		}
		if resp.StatusCode >= 500 {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			sp.End()
			continue
		}
		relay(w, resp)
		resp.Body.Close()
		sp.End()
		return
	}
	writeError(w, http.StatusBadGateway, "no_replicas", fmt.Sprintf("no replica of %q is reachable", id))
}

// handleSnapshotPut installs an uploaded snapshot on every owning
// replica (the router-level analogue of register).
func (rt *Router) handleSnapshotPut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	snap, err := DecodeSnapshot(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_snapshot", err.Error())
		return
	}
	if snap.ID != id {
		writeError(w, http.StatusBadRequest, "bad_snapshot", fmt.Sprintf("snapshot is of database %q, not %q", snap.ID, id))
		return
	}
	rt.mu.Lock()
	ds, ok := rt.dbs[id]
	if !ok {
		ds = &routedDB{id: id, owners: rt.ring.Owners(id)}
		ds.applyCond = sync.NewCond(&ds.pmu)
		rt.dbs[id] = ds
	}
	rt.mu.Unlock()
	ds.mu.Lock()
	ds.version = snap.Version
	var (
		relayStatus int
		relayBody   []byte
	)
	for _, name := range ds.owners {
		ws := rt.workerFor(name)
		resp, sp, err := rt.callWorker(r.Context(), ws, http.MethodPut, dbPath(id)+"/snapshot", nil, body, "application/octet-stream", nil)
		if err != nil {
			continue
		}
		respBody, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		sp.End()
		if rerr != nil || resp.StatusCode >= 500 {
			continue
		}
		if relayBody == nil {
			relayStatus, relayBody = resp.StatusCode, respBody
		}
	}
	ds.mu.Unlock()
	if relayBody == nil {
		writeError(w, http.StatusBadGateway, "no_replicas", fmt.Sprintf("no replica of %q accepted the snapshot", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(relayStatus)
	_, _ = w.Write(relayBody)
}

// handleDelete removes the database from every owning replica.
func (rt *Router) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ds, ok := rt.lookupDB(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no database %q", id))
		return
	}
	succeeded := false
	for _, name := range ds.owners {
		ws := rt.workerFor(name)
		status, _, err := rt.workerJSON(r.Context(), ws, http.MethodDelete, dbPath(id), nil, nil)
		if err == nil && (status == http.StatusNoContent || status == http.StatusNotFound) {
			succeeded = true
		}
	}
	if !succeeded {
		// Keep the routing entry: the data still lives on the workers, so
		// dropping it would strand the database — unroutable, yet a later
		// re-register of the id would start a fresh version sequence that
		// conflicts with surviving worker state. The caller retries.
		writeError(w, http.StatusBadGateway, "no_replicas", fmt.Sprintf("no replica of %q acknowledged the delete", id))
		return
	}
	rt.mu.Lock()
	delete(rt.dbs, id)
	rt.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// patchDelta is the router's view of a PATCH body: the parsed fact keys
// (for merge-conflict detection) plus the original strings to forward.
type patchDelta struct {
	addEndo, addExo, remove []string
	keys                    map[string]bool
}

// parsePatchDelta validates the fact lists; a delta the router cannot
// parse is never merged (it forwards standalone so only its own caller
// sees the worker's 400).
func parsePatchDelta(addEndo, addExo, remove []string) (*patchDelta, error) {
	d := &patchDelta{addEndo: addEndo, addExo: addExo, remove: remove, keys: map[string]bool{}}
	for _, list := range [][]string{addEndo, addExo, remove} {
		for _, s := range list {
			f, err := db.ParseFact(s)
			if err != nil {
				return nil, err
			}
			d.keys[f.Key()] = true
		}
	}
	return d, nil
}

// conflictsWith reports whether merging other into d could change
// semantics: any shared fact key does (e.g. one request adds what the
// other removes; a merged delta applies removals first, which would flip
// the outcome), so overlapping deltas flush the window instead of
// merging.
func (d *patchDelta) conflictsWith(other *patchDelta) bool {
	for k := range other.keys {
		if d.keys[k] {
			return true
		}
	}
	return false
}

func (d *patchDelta) merge(other *patchDelta) {
	d.addEndo = append(d.addEndo, other.addEndo...)
	d.addExo = append(d.addExo, other.addExo...)
	d.remove = append(d.remove, other.remove...)
	for k := range other.keys {
		d.keys[k] = true
	}
}

// patchResult is what every waiter of a merged PATCH receives: the
// canonical replica response for the whole merged delta.
type patchResult struct {
	status int
	body   []byte
}

// patchBatch is one open PATCH merge window.
type patchBatch struct {
	seq     uint64
	delta   *patchDelta
	waiters []chan patchResult
	timer   *time.Timer
}

// handlePatch is the PATCH coalescing front: deltas arriving within the
// window against the same database merge into one delta applied once per
// replica — one version bump, one DP-tree maintenance sweep per replica,
// regardless of burst size. Deltas touching a common fact never merge
// (the earlier batch flushes first), so replicas always see a sequence
// of deltas semantically identical to some serialization of the burst.
func (rt *Router) handlePatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ds, ok := rt.lookupDB(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no database %q", id))
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	var req struct {
		AddEndo []string `json:"add_endo,omitempty"`
		AddExo  []string `json:"add_exo,omitempty"`
		Remove  []string `json:"remove,omitempty"`
	}
	if err := decodeJSONBody(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
		return
	}
	delta, perr := parsePatchDelta(req.AddEndo, req.AddExo, req.Remove)
	traced := obs.RecorderFrom(r.Context()) != nil
	if perr != nil || traced || rt.opts.CoalesceWindow < 0 {
		// Unmergeable (malformed, traced, or coalescing disabled): forward
		// standalone, but still through the sequenced executor so replica
		// apply order stays total.
		if delta == nil {
			delta = &patchDelta{addEndo: req.AddEndo, addExo: req.AddExo, remove: req.Remove, keys: map[string]bool{}}
		}
		res := rt.runPatchBatch(r.Context(), ds, rt.enqueuePatch(ds, delta, nil))
		rt.writePatchResult(w, r, res)
		return
	}

	ch := make(chan patchResult, 1)
	ds.pmu.Lock()
	if b := ds.pending; b != nil && !b.delta.conflictsWith(delta) {
		b.delta.merge(delta)
		b.waiters = append(b.waiters, ch)
		ds.pmu.Unlock()
		rt.writePatchResult(w, r, <-ch)
		return
	}
	if b := ds.pending; b != nil {
		// Conflict: flush the open batch now; ours starts a new window
		// sequenced after it.
		b.timer.Stop()
		ds.pending = nil
		go rt.runPatchBatch(context.WithoutCancel(r.Context()), ds, b)
	}
	ds.nextSeq++
	b := &patchBatch{seq: ds.nextSeq, delta: delta, waiters: []chan patchResult{ch}}
	ds.pending = b
	b.timer = time.AfterFunc(rt.opts.CoalesceWindow, func() {
		ds.pmu.Lock()
		won := ds.pending == b
		if won {
			ds.pending = nil
		}
		ds.pmu.Unlock()
		if !won {
			// A conflict flush or standalone enqueue already claimed this
			// batch (its timer.Stop lost the race with this callback firing);
			// running it again would apply the merged delta to every replica
			// twice.
			return
		}
		//repolint:allow ctxflow: timer-driven window flush — the merged batch outlives every caller's request context by design; cancellation would drop other callers' acknowledged deltas
		rt.runPatchBatch(context.Background(), ds, b)
	})
	ds.pmu.Unlock()
	rt.writePatchResult(w, r, <-ch)
}

// enqueuePatch sequences a standalone batch behind any open window
// (flushing it), preserving total apply order.
func (rt *Router) enqueuePatch(ds *routedDB, delta *patchDelta, waiters []chan patchResult) *patchBatch {
	ds.pmu.Lock()
	defer ds.pmu.Unlock()
	if b := ds.pending; b != nil {
		b.timer.Stop()
		ds.pending = nil
		//repolint:allow ctxflow: early window flush — the flushed batch belongs to other callers, so it must not inherit this request's cancellation
		go rt.runPatchBatch(context.Background(), ds, b)
	}
	ds.nextSeq++
	return &patchBatch{seq: ds.nextSeq, delta: delta, waiters: waiters}
}

// runPatchBatch applies one merged delta: it waits its turn in the per-db
// sequence, forwards the delta to every owning replica in owner order
// under the db write lock (so scatters never straddle it), and hands the
// canonical response to every waiter. A replica that fails to apply is
// warmed from a healthy peer afterwards — it missed a delta, so its
// state is stale until the snapshot lands.
func (rt *Router) runPatchBatch(ctx context.Context, ds *routedDB, b *patchBatch) patchResult {
	ds.pmu.Lock()
	for ds.appliedSeq != b.seq-1 {
		ds.applyCond.Wait()
	}
	ds.pmu.Unlock()

	if n := int64(len(b.waiters)) - 1; n > 0 {
		rt.coalescedPatch.Add(n)
	}
	fwd, _ := json.Marshal(struct {
		AddEndo []string `json:"add_endo,omitempty"`
		AddExo  []string `json:"add_exo,omitempty"`
		Remove  []string `json:"remove,omitempty"`
	}{b.delta.addEndo, b.delta.addExo, b.delta.remove})

	ds.mu.Lock()
	var (
		res    patchResult
		stale  []*workerState
		gotOne bool
	)
	for _, name := range ds.owners {
		ws := rt.workerFor(name)
		status, respBody, err := rt.workerJSON(ctx, ws, http.MethodPatch, dbPath(ds.id), nil, fwd)
		if err != nil || status >= 500 {
			stale = append(stale, ws)
			continue
		}
		if !gotOne {
			gotOne = true
			res = patchResult{status: status, body: respBody}
			if status == http.StatusOK {
				var info struct {
					Version db.Version `json:"version"`
				}
				if json.Unmarshal(respBody, &info) == nil && info.Version > 0 {
					ds.version = info.Version
				}
			}
		}
	}
	ds.mu.Unlock()

	ds.pmu.Lock()
	ds.appliedSeq = b.seq
	ds.applyCond.Broadcast()
	ds.pmu.Unlock()

	if !gotOne {
		res = patchResult{status: http.StatusBadGateway}
	}
	for _, ch := range b.waiters {
		ch <- res
	}
	// Replicas that missed the delta heal from a peer snapshot; the
	// warm-up no-ops for workers that are down (the prober re-warms them
	// on recovery).
	for _, ws := range stale {
		if ws.up.Load() {
			go rt.warmReplica(context.WithoutCancel(ctx), ds, ws)
		}
	}
	return res
}

func (rt *Router) writePatchResult(w http.ResponseWriter, r *http.Request, res patchResult) {
	if res.status == http.StatusBadGateway && res.body == nil {
		writeError(w, http.StatusBadGateway, "no_replicas", "no replica accepted the delta")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}
