// Package cluster implements the sharded, replicated deployment mode of
// shapleyd: a consistent-hash ring assigning database ids to replicated
// worker shards, a health-probing, request-coalescing HTTP router in
// front of them, and the portable snapshot encoding workers use to warm
// up new or recovered replicas without recomputing DP-trees.
//
// The package deliberately does not import internal/server: the router
// speaks to workers over their public HTTP API and relays worker answer
// bodies verbatim (bit-identical responses are an acceptance criterion,
// so re-encoding is off the table). internal/server imports this package
// for the snapshot wire format behind its GET/PUT snapshot endpoints.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/db"
)

// ErrBadSnapshot reports a snapshot body that does not decode: truncated,
// corrupted, or not produced by a compatible encoder.
var ErrBadSnapshot = errors.New("cluster: malformed snapshot")

// snapshotMagic versions the wire format; bump the trailing byte on any
// incompatible change so a mixed-version fleet fails fast instead of
// mis-decoding.
const snapshotMagic = "shsnap\x00\x01"

// Snapshot is the portable warm-up state of one registered database: its
// text, the version it serves, and the exported memo snapshots of its
// prepared plans. The database text is carried once and stamped into
// every plan on decode (all plans of one version are prepared over the
// same database).
type Snapshot struct {
	ID      string
	Version db.Version
	DBText  string
	Plans   []PlanEntry
}

// PlanEntry is one prepared plan's snapshot, minus the database text the
// envelope carries once.
type PlanEntry struct {
	Query string
	IsUCQ bool
	Exo   []string
	Brute bool
	Root  *core.NodeSnapshot
}

// SnapshotOf assembles the envelope from per-plan snapshots, lifting the
// shared database text out of each. Plans whose DBText disagrees with
// dbText (an Export racing a PATCH) are skipped — a warm-up snapshot must
// never mix versions.
func SnapshotOf(id string, version db.Version, dbText string, plans []*core.PlanSnapshot) *Snapshot {
	s := &Snapshot{ID: id, Version: version, DBText: dbText}
	for _, ps := range plans {
		if ps == nil || ps.DBText != dbText {
			continue
		}
		s.Plans = append(s.Plans, PlanEntry{
			Query: ps.Query,
			IsUCQ: ps.IsUCQ,
			Exo:   append([]string(nil), ps.Exo...),
			Brute: ps.Brute,
			Root:  ps.Root,
		})
	}
	return s
}

// PlanSnapshots expands the envelope back to self-contained per-plan
// snapshots, stamping the shared database text into each.
func (s *Snapshot) PlanSnapshots() []*core.PlanSnapshot {
	out := make([]*core.PlanSnapshot, len(s.Plans))
	for i, pe := range s.Plans {
		out[i] = &core.PlanSnapshot{
			Query:  pe.Query,
			IsUCQ:  pe.IsUCQ,
			Exo:    append([]string(nil), pe.Exo...),
			Brute:  pe.Brute,
			DBText: s.DBText,
			Root:   pe.Root,
		}
	}
	return out
}

// EncodeSnapshot renders the envelope in the binary wire format: a magic
// header, then varint-framed strings and byte blobs. Numeric vectors ride
// as per-coefficient big-endian magnitudes (counts are non-negative, so
// no sign byte), exactly the core.NodeSnapshot representation.
func EncodeSnapshot(s *Snapshot) []byte {
	b := []byte(snapshotMagic)
	b = appendString(b, s.ID)
	b = binary.AppendUvarint(b, uint64(s.Version))
	b = appendString(b, s.DBText)
	b = binary.AppendUvarint(b, uint64(len(s.Plans)))
	for _, pe := range s.Plans {
		b = appendString(b, pe.Query)
		b = appendBool(b, pe.IsUCQ)
		b = binary.AppendUvarint(b, uint64(len(pe.Exo)))
		for _, r := range pe.Exo {
			b = appendString(b, r)
		}
		b = appendBool(b, pe.Brute)
		b = appendBool(b, pe.Root != nil)
		if pe.Root != nil {
			b = appendNode(b, pe.Root)
		}
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendVec(b []byte, coeffs [][]byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(coeffs)))
	for _, c := range coeffs {
		b = binary.AppendUvarint(b, uint64(len(c)))
		b = append(b, c...)
	}
	return b
}

func appendNode(b []byte, n *core.NodeSnapshot) []byte {
	b = append(b, n.Kind)
	b = binary.AppendUvarint(b, uint64(n.RelN))
	b = binary.AppendUvarint(b, uint64(n.Free))
	b = appendVec(b, n.Core)
	b = appendVec(b, n.Sat)
	b = appendVec(b, n.NonSat)
	b = appendVec(b, n.Prod)
	b = binary.AppendUvarint(b, uint64(len(n.Children)))
	for _, c := range n.Children {
		b = appendNode(b, c)
	}
	return b
}

// snapReader is the decode cursor. Every length it reads is validated
// against the remaining input before allocating, so a corrupted count
// fails with ErrBadSnapshot instead of an enormous allocation.
type snapReader struct {
	b   []byte
	off int
}

func (r *snapReader) remaining() int { return len(r.b) - r.off }

func (r *snapReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint at offset %d", ErrBadSnapshot, r.off)
	}
	r.off += n
	return v, nil
}

// count reads a varint element count for elements of at least minBytes
// encoded bytes each, rejecting counts the remaining input cannot hold.
func (r *snapReader) count(minBytes int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(r.remaining()/minBytes) {
		return 0, fmt.Errorf("%w: count %d exceeds remaining input at offset %d", ErrBadSnapshot, v, r.off)
	}
	return int(v), nil
}

func (r *snapReader) blob() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining()) {
		return nil, fmt.Errorf("%w: blob length %d exceeds remaining input at offset %d", ErrBadSnapshot, n, r.off)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+int(n)])
	r.off += int(n)
	return out, nil
}

func (r *snapReader) str() (string, error) {
	b, err := r.blob()
	return string(b), err
}

func (r *snapReader) boolean() (bool, error) {
	if r.remaining() < 1 {
		return false, fmt.Errorf("%w: truncated at offset %d", ErrBadSnapshot, r.off)
	}
	v := r.b[r.off]
	r.off++
	if v > 1 {
		return false, fmt.Errorf("%w: invalid bool byte %d at offset %d", ErrBadSnapshot, v, r.off-1)
	}
	return v == 1, nil
}

func (r *snapReader) vec() ([][]byte, error) {
	n, err := r.count(1)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([][]byte, n)
	for i := range out {
		if out[i], err = r.blob(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *snapReader) node() (*core.NodeSnapshot, error) {
	if r.remaining() < 1 {
		return nil, fmt.Errorf("%w: truncated node at offset %d", ErrBadSnapshot, r.off)
	}
	n := &core.NodeSnapshot{Kind: r.b[r.off]}
	r.off++
	relN, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	free, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	n.RelN, n.Free = int(relN), int(free)
	if n.Core, err = r.vec(); err != nil {
		return nil, err
	}
	if n.Sat, err = r.vec(); err != nil {
		return nil, err
	}
	if n.NonSat, err = r.vec(); err != nil {
		return nil, err
	}
	if n.Prod, err = r.vec(); err != nil {
		return nil, err
	}
	kids, err := r.count(1)
	if err != nil {
		return nil, err
	}
	for i := 0; i < kids; i++ {
		c, err := r.node()
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, c)
	}
	return n, nil
}

// DecodeSnapshot parses the wire format produced by EncodeSnapshot.
// Structural well-formedness is all it checks; semantic validation (does
// the tree match the replayed build?) happens in core's ImportPlan.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapshotMagic) || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic header", ErrBadSnapshot)
	}
	r := &snapReader{b: data, off: len(snapshotMagic)}
	s := &Snapshot{}
	var err error
	if s.ID, err = r.str(); err != nil {
		return nil, err
	}
	v, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	s.Version = db.Version(v)
	if s.DBText, err = r.str(); err != nil {
		return nil, err
	}
	nPlans, err := r.count(1)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nPlans; i++ {
		var pe PlanEntry
		if pe.Query, err = r.str(); err != nil {
			return nil, err
		}
		if pe.IsUCQ, err = r.boolean(); err != nil {
			return nil, err
		}
		nExo, err := r.count(1)
		if err != nil {
			return nil, err
		}
		for j := 0; j < nExo; j++ {
			rel, err := r.str()
			if err != nil {
				return nil, err
			}
			pe.Exo = append(pe.Exo, rel)
		}
		if pe.Brute, err = r.boolean(); err != nil {
			return nil, err
		}
		hasRoot, err := r.boolean()
		if err != nil {
			return nil, err
		}
		if hasRoot {
			if pe.Root, err = r.node(); err != nil {
				return nil, err
			}
		}
		s.Plans = append(s.Plans, pe)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, r.remaining())
	}
	return s, nil
}
