package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/obs"
)

// RouterOptions configures NewRouter.
type RouterOptions struct {
	// Config is the shard layout; required, must be validated.
	Config *Config
	// CoalesceWindow bounds how long the router holds the first of a
	// burst of mergeable requests while collecting more. Zero means
	// DefaultCoalesceWindow; negative disables coalescing.
	CoalesceWindow time.Duration
	// ProbeInterval is the worker health-probe cadence. Zero means
	// DefaultProbeInterval; negative disables probing (workers stay in
	// whatever state request outcomes put them).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz probe; zero means DefaultProbeTimeout.
	ProbeTimeout time.Duration
	// Client issues worker requests; nil means a default transport with
	// no overall timeout (mode=all responses stream).
	Client *http.Client
	// Logger, when non-nil, receives router lifecycle and failover events.
	Logger *slog.Logger
}

// DefaultCoalesceWindow is the request-merge window when
// RouterOptions.CoalesceWindow is 0.
const DefaultCoalesceWindow = 2 * time.Millisecond

// DefaultProbeInterval is the health-probe cadence when
// RouterOptions.ProbeInterval is 0.
const DefaultProbeInterval = 500 * time.Millisecond

// DefaultProbeTimeout bounds one probe when RouterOptions.ProbeTimeout is 0.
const DefaultProbeTimeout = 2 * time.Second

// failThreshold is how many consecutive probe failures mark a worker down.
const failThreshold = 2

// workerState is one worker's health and traffic accounting. The up flag
// is written by the prober (state machine over consecutive outcomes) and,
// pessimistically, by any request path that hits a transport-level error;
// only the prober ever flips a worker back up, after a successful probe.
type workerState struct {
	name string
	url  string

	up          atomic.Bool
	consecFails int // prober goroutine only

	ok   atomic.Int64
	fail atomic.Int64
}

// routedDB is the router's bookkeeping for one registered database.
type routedDB struct {
	id     string
	owners []string // ring owners in priority order, fixed at registration

	// mu orders writes against version-consistent reads: a PATCH flush
	// holds it exclusively while forwarding the delta to every replica,
	// and mode=all scatter holds it shared for the whole gather, so a
	// scatter never straddles a delta.
	mu      sync.RWMutex
	version db.Version

	// Patch coalescing state: pending is the open merge batch, seq/
	// appliedSeq order flushed batches so replicas see every delta in
	// the same sequence (applyCond is signalled on pmu).
	pmu        sync.Mutex
	pending    *patchBatch
	nextSeq    uint64
	appliedSeq uint64
	applyCond  *sync.Cond
}

// Router is the cluster front: an http.Handler speaking the same API as
// a single shapleyd worker, behind which database ids shard onto a
// replicated consistent-hash ring of workers. It coalesces bursts of
// mergeable work (concurrent single-fact requests into one batched
// sweep, PATCH bursts into one delta), scatter-gathers mode=all across
// replicas, probes worker health and fails over mid-request, and warms
// recovered replicas from peer snapshots.
type Router struct {
	opts    RouterOptions
	ring    *Ring
	workers map[string]*workerState // immutable after NewRouter
	mux     *http.ServeMux
	client  *http.Client
	log     *slog.Logger
	start   time.Time

	mu  sync.RWMutex
	dbs map[string]*routedDB
	seq int

	draining atomic.Bool

	coalescedWindow atomic.Int64
	coalescedPatch  atomic.Int64
	failovers       atomic.Int64

	// Single-fact coalescing windows, keyed by (db, version, canonical
	// query, exo, brute, workers).
	fmu         sync.Mutex
	factBatches map[string]*factBatch

	stop      context.CancelFunc
	probeDone chan struct{}
}

// NewRouter builds the router for a validated shard config.
func NewRouter(opts RouterOptions) (*Router, error) {
	if opts.Config == nil {
		return nil, fmt.Errorf("cluster: router needs a shard config")
	}
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	ring, err := ringFrom(opts.Config)
	if err != nil {
		return nil, err
	}
	if opts.CoalesceWindow == 0 {
		opts.CoalesceWindow = DefaultCoalesceWindow
	}
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = DefaultProbeInterval
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = DefaultProbeTimeout
	}
	rt := &Router{
		opts:        opts,
		ring:        ring,
		workers:     make(map[string]*workerState, len(opts.Config.Workers)),
		mux:         http.NewServeMux(),
		client:      opts.Client,
		log:         opts.Logger,
		start:       time.Now(),
		dbs:         make(map[string]*routedDB),
		factBatches: make(map[string]*factBatch),
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	if rt.log == nil {
		rt.log = slog.New(slog.DiscardHandler)
	}
	for _, w := range opts.Config.Workers {
		ws := &workerState{name: w.Name, url: strings.TrimRight(w.URL, "/")}
		// Optimistic start: requests flow before the first probe lands.
		ws.up.Store(true)
		rt.workers[w.Name] = ws
	}
	rt.mux.HandleFunc("POST /v1/databases", rt.handleRegister)
	rt.mux.HandleFunc("GET /v1/databases", rt.handleListDatabases)
	rt.mux.HandleFunc("GET /v1/databases/{id}", rt.handleOwnerGet)
	rt.mux.HandleFunc("PATCH /v1/databases/{id}", rt.handlePatch)
	rt.mux.HandleFunc("DELETE /v1/databases/{id}", rt.handleDelete)
	rt.mux.HandleFunc("POST /v1/databases/{id}/shapley", rt.handleShapley)
	rt.mux.HandleFunc("POST /v1/databases/{id}/classify", rt.handleOwnerPost)
	rt.mux.HandleFunc("POST /v1/databases/{id}/relevance", rt.handleOwnerPost)
	rt.mux.HandleFunc("POST /v1/databases/{id}/approx", rt.handleOwnerPost)
	rt.mux.HandleFunc("GET /v1/databases/{id}/snapshot", rt.handleOwnerGet)
	rt.mux.HandleFunc("PUT /v1/databases/{id}/snapshot", rt.handleSnapshotPut)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /readyz", rt.handleReadyz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return rt, nil
}

// Start launches the health prober (a no-op when probing is disabled).
// Close stops it.
func (rt *Router) Start() {
	if rt.opts.ProbeInterval < 0 || rt.stop != nil {
		return
	}
	//repolint:allow ctxflow: the prober is router-lifetime background work with no request parent; Close cancels it
	ctx, cancel := context.WithCancel(context.Background())
	rt.stop = cancel
	rt.probeDone = make(chan struct{})
	go rt.probeLoop(ctx)
}

// Close stops the prober and waits for it to exit.
func (rt *Router) Close() {
	if rt.stop != nil {
		rt.stop()
		<-rt.probeDone
		rt.stop = nil
	}
}

// SetDraining flips the router's /readyz for graceful shutdown.
func (rt *Router) SetDraining(v bool) { rt.draining.Store(v) }

// Ring exposes the router's shard ring (for tests and diagnostics).
func (rt *Router) Ring() *Ring { return rt.ring }

// CoalescedWindow reports single-fact requests merged into another
// request's batch. CoalescedPatch reports PATCH requests merged into
// another request's delta. Failovers reports requests retried on another
// replica after a worker failed.
func (rt *Router) CoalescedWindow() int64 { return rt.coalescedWindow.Load() }
func (rt *Router) CoalescedPatch() int64  { return rt.coalescedPatch.Load() }
func (rt *Router) Failovers() int64       { return rt.failovers.Load() }

// ServeHTTP mirrors the worker's trace contract: honor a well-formed
// inbound X-Trace-Id, echo it on the response, and attach a span
// recorder when the request opts in with ?trace=1 — so one trace id
// follows a request through the router into whichever workers serve it.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	tid := r.Header.Get("X-Trace-Id")
	if tid == "" || len(tid) > 64 ||
		strings.ContainsFunc(tid, func(c rune) bool { return c < 0x21 || c > 0x7e }) {
		tid = obs.NewTraceID()
	}
	w.Header().Set("X-Trace-Id", tid)
	ctx := obs.WithTraceID(r.Context(), tid)
	if r.URL.Query().Get("trace") == "1" {
		ctx = obs.WithRecorder(ctx, obs.NewRecorder(tid, "request"))
	}
	rt.mux.ServeHTTP(w, r.WithContext(ctx))
}

// workerFor resolves a worker name (always present in the immutable map
// for names produced by the ring).
func (rt *Router) workerFor(name string) *workerState { return rt.workers[name] }

// liveOwners returns db's owners that are currently up, in priority
// order; when every owner looks down it returns all of them — a
// last-ditch attempt beats a refusal, and a success flips nothing (only
// the prober revives workers).
func (rt *Router) liveOwners(ds *routedDB) []*workerState {
	var live []*workerState
	for _, name := range ds.owners {
		if ws := rt.workerFor(name); ws != nil && ws.up.Load() {
			live = append(live, ws)
		}
	}
	if len(live) > 0 {
		return live
	}
	all := make([]*workerState, 0, len(ds.owners))
	for _, name := range ds.owners {
		if ws := rt.workerFor(name); ws != nil {
			all = append(all, ws)
		}
	}
	return all
}

// lookupDB returns the routed database for id.
func (rt *Router) lookupDB(id string) (*routedDB, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	ds, ok := rt.dbs[id]
	return ds, ok
}

// callWorker issues one request to a worker under a "worker.call" span,
// propagating the trace id (and ?trace=1 when the inbound request is
// being traced) and counting the outcome. A transport-level failure
// marks the worker down immediately — the prober is the only path back
// up. The caller owns the response body.
func (rt *Router) callWorker(ctx context.Context, ws *workerState, method, path string, q url.Values, body []byte, contentType string, hdr http.Header) (*http.Response, *obs.Span, error) {
	u := ws.url + path
	if obs.RecorderFrom(ctx) != nil {
		if q == nil {
			q = url.Values{}
		}
		q.Set("trace", "1")
	}
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return nil, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if tid := obs.TraceIDFrom(ctx); tid != "" {
		req.Header.Set("X-Trace-Id", tid)
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	_, sp := obs.Start(ctx, "worker.call")
	if sp.Recording() {
		sp.SetAttrs(obs.String("worker", ws.name), obs.String("path", path))
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		sp.End()
		ws.fail.Add(1)
		ws.up.Store(false)
		rt.log.Warn("worker call failed", "worker", ws.name, "path", path, "err", err)
		return nil, nil, err
	}
	if resp.StatusCode >= 500 {
		ws.fail.Add(1)
	} else {
		ws.ok.Add(1)
	}
	return resp, sp, nil
}

// workerJSON is callWorker for fully buffered JSON exchanges: it reads
// the body, ends the span, and — when tracing — grafts the worker's own
// span tree (the "trace" field of its response, if any) under the
// worker.call span, which is what makes ?trace=1 through the router show
// the remote hop.
func (rt *Router) workerJSON(ctx context.Context, ws *workerState, method, path string, q url.Values, body []byte) (int, []byte, error) {
	resp, sp, err := rt.callWorker(ctx, ws, method, path, q, body, "application/json", nil)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err == nil && sp.Recording() {
		var tr struct {
			Trace *obs.Trace `json:"trace"`
		}
		if json.Unmarshal(respBody, &tr) == nil && tr.Trace != nil {
			sp.AdoptRemote(tr.Trace.Root)
		}
	}
	sp.End()
	if err != nil {
		ws.fail.Add(1)
		return 0, nil, err
	}
	return resp.StatusCode, respBody, nil
}

// probeLoop drives worker health: every interval, GET /readyz on every
// worker. failThreshold consecutive failures mark a worker down; the
// first success after being down marks it up and triggers an
// asynchronous warm-up (snapshots of every database it owns, shipped
// from a healthy peer), so a recovered replica rejoins with current
// state instead of serving stale answers or 404s.
func (rt *Router) probeLoop(ctx context.Context) {
	defer close(rt.probeDone)
	tick := time.NewTicker(rt.opts.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		for _, ws := range rt.workers {
			rt.probeWorker(ctx, ws)
		}
	}
}

func (rt *Router) probeWorker(ctx context.Context, ws *workerState) {
	pctx, cancel := context.WithTimeout(ctx, rt.opts.ProbeTimeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, ws.url+"/readyz", nil)
	if err == nil {
		resp, err := rt.client.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	if ok {
		ws.consecFails = 0
		if !ws.up.Swap(true) {
			rt.log.Info("worker recovered", "worker", ws.name)
			go rt.warmWorker(context.WithoutCancel(ctx), ws)
		}
		return
	}
	ws.consecFails++
	if ws.consecFails >= failThreshold && ws.up.Swap(false) {
		rt.log.Warn("worker down", "worker", ws.name, "consecutive_failures", ws.consecFails)
	}
}

// warmWorker ships a current snapshot of every database ws owns from a
// healthy peer replica, bringing a new or recovered worker to parity
// without recomputing any DP-tree it can import.
func (rt *Router) warmWorker(ctx context.Context, ws *workerState) {
	rt.mu.RLock()
	var owned []*routedDB
	for _, ds := range rt.dbs {
		for _, o := range ds.owners {
			if o == ws.name {
				owned = append(owned, ds)
				break
			}
		}
	}
	rt.mu.RUnlock()
	sort.Slice(owned, func(i, j int) bool { return owned[i].id < owned[j].id })
	for _, ds := range owned {
		rt.warmReplica(ctx, ds, ws)
	}
}

// warmReplica copies ds from a healthy peer owner onto ws. Holding the
// db's write lock keeps the snapshot version-consistent: no PATCH can
// land between the export and the import.
func (rt *Router) warmReplica(ctx context.Context, ds *routedDB, ws *workerState) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	for _, name := range ds.owners {
		src := rt.workerFor(name)
		if src == nil || src == ws || !src.up.Load() {
			continue
		}
		resp, sp, err := rt.callWorker(ctx, src, http.MethodGet, "/v1/databases/"+url.PathEscape(ds.id)+"/snapshot", nil, nil, "", nil)
		if err != nil {
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		sp.End()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		putResp, psp, err := rt.callWorker(ctx, ws, http.MethodPut, "/v1/databases/"+url.PathEscape(ds.id)+"/snapshot", nil, body, "application/octet-stream", nil)
		if err != nil {
			return
		}
		_, _ = io.Copy(io.Discard, putResp.Body)
		putResp.Body.Close()
		psp.End()
		if putResp.StatusCode == http.StatusOK {
			rt.log.Info("replica warmed", "db", ds.id, "worker", ws.name, "source", src.name)
		} else {
			rt.log.Warn("replica warm-up rejected", "db", ds.id, "worker", ws.name, "status", putResp.StatusCode)
		}
		return
	}
}

// errorBody mirrors the worker's error schema so router-originated
// errors are indistinguishable in shape from worker ones.
type errorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

// writeJSON matches the worker's encoder settings (two-space indent)
// byte for byte, so router-assembled responses that carry worker
// payloads verbatim still match a direct worker response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, kind, msg string) {
	writeJSON(w, status, errorBody{Error: msg, Kind: kind})
}

// relay copies a worker response (status, content headers, body) to the
// client verbatim.
func relay(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "X-Cache", "X-Snapshot-Version", "X-Snapshot-Plans"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	up := 0
	for _, ws := range rt.workers {
		if ws.up.Load() {
			up++
		}
	}
	rt.mu.RLock()
	n := len(rt.dbs)
	rt.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"role":           "router",
		"workers":        len(rt.workers),
		"workers_up":     up,
		"databases":      n,
		"uptime_seconds": time.Since(rt.start).Seconds(),
	})
}

func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	up := 0
	for _, ws := range rt.workers {
		if ws.up.Load() {
			up++
		}
	}
	status, state := http.StatusOK, "ready"
	switch {
	case rt.draining.Load():
		status, state = http.StatusServiceUnavailable, "draining"
	case up == 0:
		status, state = http.StatusServiceUnavailable, "no workers up"
	}
	writeJSON(w, status, map[string]any{
		"status":     state,
		"role":       "router",
		"workers_up": up,
	})
}

// handleMetrics renders the router's counters in the same hand-rolled
// Prometheus text format as the worker, including the full coalesced-
// requests family (singleflight stays 0 here: plan preparation happens
// on workers).
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintln(w, "# HELP shapleyd_coalesced_requests_total Requests answered by merging into another request's work instead of doing their own: singleflight joins an in-flight plan preparation; window and patch are the cluster router's bounded-window merges of single-fact requests and PATCH deltas.")
	fmt.Fprintln(w, "# TYPE shapleyd_coalesced_requests_total counter")
	fmt.Fprintf(w, "shapleyd_coalesced_requests_total{kind=\"singleflight\"} %d\n", 0)
	fmt.Fprintf(w, "shapleyd_coalesced_requests_total{kind=\"window\"} %d\n", rt.coalescedWindow.Load())
	fmt.Fprintf(w, "shapleyd_coalesced_requests_total{kind=\"patch\"} %d\n", rt.coalescedPatch.Load())

	fmt.Fprintln(w, "# HELP shapleyd_router_failovers_total Requests retried on another replica after a worker failed.")
	fmt.Fprintln(w, "# TYPE shapleyd_router_failovers_total counter")
	fmt.Fprintf(w, "shapleyd_router_failovers_total %d\n", rt.failovers.Load())

	names := rt.ring.Workers()
	fmt.Fprintln(w, "# HELP shapleyd_router_worker_up Worker health as seen by the router's prober (1 up, 0 down).")
	fmt.Fprintln(w, "# TYPE shapleyd_router_worker_up gauge")
	for _, name := range names {
		v := 0
		if rt.workers[name].up.Load() {
			v = 1
		}
		fmt.Fprintf(w, "shapleyd_router_worker_up{worker=%q} %d\n", name, v)
	}

	fmt.Fprintln(w, "# HELP shapleyd_router_worker_requests_total Requests the router issued to each worker, by outcome (error is transport failure or HTTP 5xx).")
	fmt.Fprintln(w, "# TYPE shapleyd_router_worker_requests_total counter")
	for _, name := range names {
		ws := rt.workers[name]
		fmt.Fprintf(w, "shapleyd_router_worker_requests_total{worker=%q,outcome=\"ok\"} %d\n", name, ws.ok.Load())
		fmt.Fprintf(w, "shapleyd_router_worker_requests_total{worker=%q,outcome=\"error\"} %d\n", name, ws.fail.Load())
	}

	rt.mu.RLock()
	n := len(rt.dbs)
	rt.mu.RUnlock()
	fmt.Fprintln(w, "# HELP shapleyd_databases_registered Databases currently registered (router view).")
	fmt.Fprintln(w, "# TYPE shapleyd_databases_registered gauge")
	fmt.Fprintf(w, "shapleyd_databases_registered %d\n", n)

	fmt.Fprintln(w, "# HELP shapleyd_uptime_seconds Seconds since the router started.")
	fmt.Fprintln(w, "# TYPE shapleyd_uptime_seconds gauge")
	fmt.Fprintf(w, "shapleyd_uptime_seconds %.3f\n", time.Since(rt.start).Seconds())
}
