package cluster

import (
	"bytes"
	"fmt"
	"testing"
)

func TestRingOwnersBasics(t *testing.T) {
	r, err := NewRing([]string{"w1", "w2", "w3"}, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Replication(); got != 2 {
		t.Fatalf("replication = %d, want 2", got)
	}
	for _, key := range []string{"uni", "db-1", "db-2", "x"} {
		owners := r.Owners(key)
		if len(owners) != 2 {
			t.Fatalf("Owners(%q) = %v, want 2 distinct owners", key, owners)
		}
		if owners[0] == owners[1] {
			t.Fatalf("Owners(%q) = %v has a duplicate", key, owners)
		}
		if !r.Owns(key, owners[0]) || r.Owns(key, "w-not-there") {
			t.Fatalf("Owns disagrees with Owners for %q", key)
		}
	}
}

// Placement must be a pure function of the membership set: worker list
// order, which differs between a config file and a flag, must not matter.
func TestRingPlacementIgnoresInputOrder(t *testing.T) {
	a, err := NewRing([]string{"w1", "w2", "w3"}, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"w3", "w1", "w2"}, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("db-%d", i)
		ao, bo := a.Owners(key), b.Owners(key)
		if len(ao) != len(bo) {
			t.Fatalf("Owners(%q): %v vs %v", key, ao, bo)
		}
		for j := range ao {
			if ao[j] != bo[j] {
				t.Fatalf("Owners(%q): %v vs %v", key, ao, bo)
			}
		}
	}
}

// Removing one worker must move only the keys that worker owned: every
// key whose primary survives keeps that primary (consistent hashing's
// defining property — a modulo scheme would reshuffle nearly all keys).
func TestRingRebalanceMinimalMovement(t *testing.T) {
	workers := []string{"w1", "w2", "w3", "w4", "w5"}
	before, err := NewRing(workers, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(workers[:4], 64, 2) // w5 leaves
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	movedPrimary := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("db-%d", i)
		bo, ao := before.Owners(key), after.Owners(key)
		if bo[0] == "w5" {
			movedPrimary++
			continue
		}
		if ao[0] != bo[0] {
			t.Fatalf("key %q: primary moved %s -> %s though w5 did not own it", key, bo[0], ao[0])
		}
	}
	// w5 owned ~1/5 of primaries; allow generous slack but fail on the
	// near-total reshuffle a broken scheme would produce.
	if movedPrimary == 0 || movedPrimary > n/2 {
		t.Fatalf("%d/%d primaries moved; want roughly n/5", movedPrimary, n)
	}
}

func TestRingLoadSpread(t *testing.T) {
	// 512 virtual nodes per worker: enough that no worker's share of the
	// keyspace collapses (at 4 workers the shares land near 25% each; the
	// bound only rejects gross skew, which few-vnode rings do exhibit).
	r, err := NewRing([]string{"w1", "w2", "w3", "w4"}, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Owners(fmt.Sprintf("db-%d", i))[0]]++
	}
	for w, c := range counts {
		if c < n/10 {
			t.Fatalf("worker %s owns %d/%d keys: load badly skewed (%v)", w, c, n, counts)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("only %d workers received keys: %v", len(counts), counts)
	}
}

func TestRingClampsAndErrors(t *testing.T) {
	if _, err := NewRing(nil, 4, 1); err == nil {
		t.Fatal("empty worker list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 4, 1); err == nil {
		t.Fatal("duplicate worker accepted")
	}
	if _, err := NewRing([]string{""}, 4, 1); err == nil {
		t.Fatal("empty worker name accepted")
	}
	r, err := NewRing([]string{"a", "b"}, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if r.Replication() != 2 {
		t.Fatalf("replication clamped to %d, want 2", r.Replication())
	}
}

func TestConfigValidateAndDefaults(t *testing.T) {
	c, err := ParseConfig([]byte(`{"workers":[{"name":"w1","url":"http://h:1"},{"name":"w2","url":"http://h:2"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Replication != DefaultReplication || c.VirtualNodes != DefaultVirtualNodes {
		t.Fatalf("defaults not filled: %+v", c)
	}
	bad := []string{
		`{}`,
		`{"workers":[{"name":"","url":"http://h:1"}]}`,
		`{"workers":[{"name":"a","url":"h:1"}]}`,
		`{"workers":[{"name":"a","url":"http://h:1"},{"name":"a","url":"http://h:2"}]}`,
		`{"workers":[{"name":"a","url":"http://h:1"}],"replication":-1}`,
	}
	for _, s := range bad {
		if _, err := ParseConfig([]byte(s)); err == nil {
			t.Fatalf("config %s accepted", s)
		}
	}
}

func TestParseWorkerList(t *testing.T) {
	ws, err := ParseWorkerList("w1=http://h:1, w2=http://h:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || ws[0].Name != "w1" || ws[1].URL != "http://h:2" {
		t.Fatalf("parsed %+v", ws)
	}
	for _, s := range []string{"", "w1", "=http://h:1", "w1="} {
		if _, err := ParseWorkerList(s); err == nil {
			t.Fatalf("worker list %q accepted", s)
		}
	}
}

func TestSplitRanges(t *testing.T) {
	for _, tc := range []struct {
		n, replicas int
		want        []factRange
	}{
		{8, 2, []factRange{{0, 4, 0}, {4, 4, 1}}},
		{7, 3, []factRange{{0, 3, 0}, {3, 2, 1}, {5, 2, 2}}},
		{2, 5, []factRange{{0, 1, 0}, {1, 1, 1}}},
	} {
		got := splitRanges(tc.n, tc.replicas)
		if len(got) != len(tc.want) {
			t.Fatalf("splitRanges(%d,%d) = %v, want %v", tc.n, tc.replicas, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("splitRanges(%d,%d) = %v, want %v", tc.n, tc.replicas, got, tc.want)
			}
		}
	}
}

func TestSnapshotWireCorruption(t *testing.T) {
	s := &Snapshot{ID: "uni", Version: 3, DBText: "endo R(a)\n"}
	data := EncodeSnapshot(s)
	if _, err := DecodeSnapshot(data); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if _, err := DecodeSnapshot(nil); err == nil {
		t.Fatal("empty snapshot accepted")
	}
	if _, err := DecodeSnapshot(data[:len(data)-1]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if _, err := DecodeSnapshot(append(bytes.Clone(data), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	flipped := bytes.Clone(data)
	flipped[0] ^= 0xff
	if _, err := DecodeSnapshot(flipped); err == nil {
		t.Fatal("bad magic accepted")
	}
}
