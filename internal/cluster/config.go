package cluster

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"strings"
)

// Worker names one shapleyd worker process and where to reach it.
type Worker struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Config is the shard layout the router serves: the worker fleet plus
// the ring parameters. It loads from a JSON file (shapleyd -shards) or
// an inline name=url list (shapleyd -shard-workers).
type Config struct {
	Workers []Worker `json:"workers"`
	// Replication is how many distinct workers own each database id;
	// zero means DefaultReplication (clamped to the fleet size).
	Replication int `json:"replication,omitempty"`
	// VirtualNodes is the per-worker point count on the hash ring; zero
	// means DefaultVirtualNodes.
	VirtualNodes int `json:"virtual_nodes,omitempty"`
}

// DefaultReplication is the replica count when Config.Replication is 0.
const DefaultReplication = 2

// DefaultVirtualNodes is the per-worker ring point count when
// Config.VirtualNodes is 0.
const DefaultVirtualNodes = 64

// Validate checks the fleet and fills defaults in place.
func (c *Config) Validate() error {
	if len(c.Workers) == 0 {
		return fmt.Errorf("cluster: config has no workers")
	}
	seen := make(map[string]bool, len(c.Workers))
	for i, w := range c.Workers {
		if w.Name == "" {
			return fmt.Errorf("cluster: worker %d has no name", i)
		}
		if seen[w.Name] {
			return fmt.Errorf("cluster: duplicate worker name %q", w.Name)
		}
		seen[w.Name] = true
		u, err := url.Parse(w.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return fmt.Errorf("cluster: worker %q has invalid URL %q (want e.g. http://host:port)", w.Name, w.URL)
		}
	}
	if c.Replication == 0 {
		c.Replication = DefaultReplication
	}
	if c.Replication < 1 {
		return fmt.Errorf("cluster: replication %d is invalid", c.Replication)
	}
	if c.VirtualNodes == 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.VirtualNodes < 1 {
		return fmt.Errorf("cluster: virtual_nodes %d is invalid", c.VirtualNodes)
	}
	return nil
}

// ParseConfig decodes and validates a JSON shard config.
func ParseConfig(data []byte) (*Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("cluster: invalid shard config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// LoadConfig reads a shard config file.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: read shard config: %w", err)
	}
	return ParseConfig(data)
}

// ParseWorkerList parses the inline "name=url,name=url" flag form.
func ParseWorkerList(s string) ([]Worker, error) {
	var out []Worker
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, u, ok := strings.Cut(part, "=")
		if !ok || name == "" || u == "" {
			return nil, fmt.Errorf("cluster: invalid worker entry %q (want name=url)", part)
		}
		out = append(out, Worker{Name: name, URL: u})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty worker list")
	}
	return out, nil
}

// ringFrom builds the ring for a validated config.
func ringFrom(c *Config) (*Ring, error) {
	names := make([]string, len(c.Workers))
	for i, w := range c.Workers {
		names[i] = w.Name
	}
	return NewRing(names, c.VirtualNodes, c.Replication)
}
