// Academic: Example 4.1 — attributing citation counts to researchers when
// the publication metadata is exogenous. Shows how declaring relations
// exogenous moves a query across the Theorem 4.3 dichotomy, and exposes the
// ExoShap transformation stages (Figure 3's pipeline).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	d := repro.MustParseDatabase(`
# Author(researcher, institution); endogenous: authorship is under scrutiny.
endo Author(Ada, MIT)
endo Author(Grace, Yale)
endo Author(Alan, Cambridge)
# Pub(researcher, paper) and Citations(paper, count) are curated metadata.
exo  Pub(Ada, P1)
exo  Pub(Ada, P2)
exo  Pub(Grace, P2)
exo  Pub(Alan, P3)
exo  Citations(P1, 120)
exo  Citations(P2, 80)
`)
	q := repro.MustParseQuery("q() :- Author(x, y), Pub(x, z), Citations(z, w)")

	// Bare classification: non-hierarchical, so FP#P-hard by Theorem 3.1.
	fmt.Printf("no declarations:        tractable=%v\n", repro.Classify(q, nil).Tractable)
	// Example 4.1's first claim: X = {Pub, Citations} makes it tractable.
	both := map[string]bool{"Pub": true, "Citations": true}
	fmt.Printf("X={Pub, Citations}:     tractable=%v\n", repro.Classify(q, both).Tractable)
	// Second claim: X = {Citations} alone already suffices.
	citOnly := map[string]bool{"Citations": true}
	fmt.Printf("X={Citations}:          tractable=%v\n\n", repro.Classify(q, citOnly).Tractable)

	// Inspect the ExoShap pipeline (Algorithm 1 / Figure 3).
	_, hq, stages, err := repro.ExoShapTransform(d, q, both)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ExoShap stages:")
	for i, s := range stages {
		fmt.Printf("  %d. %-55s %s\n", i, s.Description+":", s.Query)
	}
	fmt.Printf("final query hierarchical: %v\n\n", hq.IsHierarchical())

	solver := &repro.Solver{ExoRelations: both}
	fmt.Println("Shapley value of each authorship fact (who drives the citation query):")
	for _, f := range d.EndoFacts() {
		v, err := solver.Shapley(d, q, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %10s  [%s]\n", f, v.Value.RatString(), v.Method)
	}
	fmt.Println("\nAlan's paper P3 has no citation record, so Author(Alan, Cambridge)")
	fmt.Println("contributes nothing; Ada covers two cited papers and dominates.")
}
