// Quickstart: compute exact Shapley values for the paper's running example
// (Figure 1, Example 2.3) with the polynomial-time hierarchical algorithm,
// using the Engine/Plan API — prepare once, query repeatedly, and evolve
// the database with deltas without re-preparing.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// Figure 1: students, TAs, courses, registrations and advisors.
	// Stud, Course and Adv are exogenous; TA and Reg are endogenous — the
	// facts whose contribution we quantify.
	d := repro.MustParseDatabase(`
exo  Stud(Adam)
exo  Stud(Ben)
exo  Stud(Caroline)
exo  Stud(David)
endo TA(Adam)
endo TA(Ben)
endo TA(David)
exo  Course(OS, EE)
exo  Course(IC, EE)
exo  Course(DB, CS)
exo  Course(AI, CS)
endo Reg(Adam, OS)
endo Reg(Adam, AI)
endo Reg(Ben, OS)
endo Reg(Caroline, DB)
endo Reg(Caroline, IC)
exo  Adv(Michael, Adam)
exo  Adv(Michael, Ben)
exo  Adv(Naomi, Caroline)
exo  Adv(Michael, David)
`)

	// q1: is some student who is not a TA registered to a course?
	q := repro.MustParseQuery("q1() :- Stud(x), !TA(x), Reg(x, y)")

	// The dichotomy: q1 is hierarchical and self-join-free, so exact
	// computation is polynomial (Theorem 3.1).
	c := repro.Classify(q, nil)
	fmt.Printf("query %s\n  hierarchical=%v self-join-free=%v => tractable=%v\n\n",
		q, c.Hierarchical, c.SelfJoinFree, c.Tractable)

	// Prepare a Plan: validation, classification and the shared CntSat
	// dynamic-programming tables run once; every query after that reuses
	// them. The context cancels long batches (Ctrl-C, timeouts, ...).
	ctx := context.Background()
	plan, err := repro.NewEngine().Prepare(ctx, d, q)
	if err != nil {
		log.Fatal(err)
	}
	values, err := plan.ShapleyAll(ctx, repro.BatchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Shapley values (compare Example 2.3):")
	for _, v := range values {
		dec, _ := v.Value.Float64()
		fmt.Printf("  %-20s %10s  (%+.4f)  [%s]\n", v.Fact, v.Value.RatString(), dec, v.Method)
	}

	// The database evolves without discarding the plan: Apply recomputes
	// only the DP buckets the delta touches (here: Caroline's), bumps the
	// version and keeps answering — bit-identical to re-preparing from
	// scratch.
	version, err := plan.Apply(ctx, repro.Delta{AddEndo: []repro.Fact{repro.NewFact("TA", "Caroline")}})
	if err != nil {
		log.Fatal(err)
	}
	v, err := plan.Shapley(ctx, repro.NewFact("TA", "Caroline"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter delta (plan version %d): Shapley(TA(Caroline)) = %s\n", version, v.Value.RatString())

	// Registrations can only help the query (positive values), TA facts can
	// only hurt it (negative values), and TA(David) is irrelevant.
	rel, err := repro.IsRelevant(d, q, repro.NewFact("TA", "David"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTA(David) relevant to q1: %v (David never registered, so his TA fact cannot matter)\n", rel)
}
