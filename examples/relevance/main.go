// Relevance: deciding whether a fact can matter at all (§5.2). For
// polarity-consistent queries relevance is polynomial and coincides with
// "Shapley value ≠ 0" (Proposition 5.7); with mixed polarity, relevance and
// Shapley zeroness come apart (Example 5.3) and deciding them is NP-hard in
// general (Propositions 5.5 and 5.8).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Part 1: polarity-consistent query — polynomial relevance.
	d := repro.MustParseDatabase(`
exo  Stud(Adam)
exo  Stud(Ben)
exo  Stud(Caroline)
endo TA(Adam)
endo TA(Ben)
endo Reg(Adam, OS)
endo Reg(Caroline, DB)
`)
	q := repro.MustParseQuery("q() :- Stud(x), !TA(x), Reg(x, y)")
	fmt.Printf("query %s (polarity consistent: %v)\n\n", q, q.IsPolarityConsistent())
	for _, f := range d.EndoFacts() {
		pos, err := repro.IsPosRelevant(d, q, f)
		if err != nil {
			log.Fatal(err)
		}
		neg, err := repro.IsNegRelevant(d, q, f)
		if err != nil {
			log.Fatal(err)
		}
		nonzero, err := repro.ShapleyNonZero(d, q, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s pos-relevant=%-5v neg-relevant=%-5v Shapley≠0=%v\n", f, pos, neg, nonzero)
	}
	fmt.Println("\nReg facts are only ever positively relevant, TA facts only negatively —")
	fmt.Println("and TA(Ben) is irrelevant because Ben never registered.")

	// Part 2: Example 5.3 — relevance without contribution.
	d2 := repro.NewDatabase()
	d2.MustAddEndo(repro.NewFact("R", "1", "2"))
	d2.MustAddEndo(repro.NewFact("R", "2", "1"))
	q2 := repro.MustParseQuery("q() :- R(x, y), !R(y, x)")
	f := repro.NewFact("R", "1", "2")
	rel, err := repro.IsRelevantBrute(d2, q2, f)
	if err != nil {
		log.Fatal(err)
	}
	v, err := repro.BruteForceShapley(d2, q2, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nExample 5.3: %s over {R(1,2), R(2,1)}\n", q2)
	fmt.Printf("  R(1,2): relevant=%v but Shapley=%s — positive and negative roles cancel.\n",
		rel, v.RatString())

	// Part 3: a polarity-consistent UCQ¬ keeps relevance polynomial (§5.2);
	// the paper's qSAT shows the disjunct-wise property is not enough.
	u := repro.MustParseUCQ(`
qa() :- Works(x, y), !Retired(x)
qb() :- Owns(x, z), !Retired(x)`)
	d3 := repro.NewDatabase()
	d3.MustAddEndo(repro.NewFact("Works", "ann", "acme"))
	d3.MustAddEndo(repro.NewFact("Retired", "ann"))
	d3.MustAddExo(repro.NewFact("Owns", "ann", "shop"))
	fmt.Printf("\nunion %s\n", u)
	for _, f := range d3.EndoFacts() {
		rel, err := repro.IsRelevantUCQ(d3, u, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s relevant=%v\n", f, rel)
	}
}
