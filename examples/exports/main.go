// Exports: the introduction's motivating scenario. A Boolean query asks
// whether some farmer exports a product to a country where it does not
// grow; the aggregate Count{c | ...} counts such countries. With the Grows
// relation declared exogenous, both are exactly computable in polynomial
// time (§4), even though the Boolean query is non-hierarchical.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	d := repro.MustParseDatabase(`
exo  Farmer(Miller)
exo  Farmer(Sato)
endo Export(Miller, Wheat, Japan)
endo Export(Miller, Corn, France)
endo Export(Sato, Rice, France)
endo Export(Sato, Wheat, Brazil)
exo  Grows(Japan, Rice)
exo  Grows(France, Wheat)
exo  Grows(France, Corn)
exo  Grows(Brazil, Corn)
`)
	q := repro.MustParseQuery("q() :- Farmer(m), Export(m, p, c), !Grows(c, p)")

	// Without exogenous declarations the query q of equation (1) is
	// non-hierarchical, hence FP#P-hard (Theorem 3.1)...
	bare := repro.Classify(q, nil)
	// ...but with Farmer and Grows exogenous the non-hierarchical path
	// disappears and the ExoShap algorithm applies (Theorem 4.3).
	exo := map[string]bool{"Farmer": true, "Grows": true}
	declared := repro.Classify(q, exo)
	fmt.Printf("tractable without declarations: %v; with X={Farmer, Grows}: %v\n\n",
		bare.Tractable, declared.Tractable)

	// One prepared plan serves all per-fact queries: the ExoShap transform
	// and the shared tables are built exactly once.
	ctx := context.Background()
	plan, err := repro.NewEngine(repro.WithExoRelations("Farmer", "Grows")).Prepare(ctx, d, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Boolean query: Shapley value of each export")
	for _, f := range d.EndoFacts() {
		v, err := plan.Shapley(ctx, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-30s %10s  [%s]\n", f, v.Value.RatString(), v.Method)
	}

	// The aggregate of the introduction: Count{c | Farmer(m),
	// Export(m,p,c), ¬Grows(c,p)} — how many countries import something
	// they do not grow. Linearity reduces it to Boolean Shapley values.
	countQ := repro.MustParseQuery("q(c) :- Farmer(m), Export(m, p, c), !Grows(c, p)")
	fmt.Println("\nAggregate Count{c | ...}: Shapley value of each export")
	agg := &repro.Solver{AllowBruteForce: true}
	for _, f := range d.EndoFacts() {
		v, err := agg.CountShapley(d, countQ, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-30s %10s\n", f, v.RatString())
	}
	fmt.Println("\nExport(Sato, Rice, France): France grows no rice, so this export")
	fmt.Println("single-handedly adds a country to the count — Shapley value 1.")
}
