// Measures: side-by-side comparison of the three contribution measures the
// paper's introduction discusses — responsibility (Meliou et al.), causal
// effect (Salimi et al.) and the Shapley value — on the running example.
// All three share the endogenous/exogenous fact model; the Shapley value is
// the only one that is efficient (values sum to q(D) − q(Dx)).
package main

import (
	"fmt"
	"log"
	"math/big"

	"repro"
)

func main() {
	d := repro.MustParseDatabase(`
exo  Stud(Adam)
exo  Stud(Ben)
exo  Stud(Caroline)
exo  Stud(David)
endo TA(Adam)
endo TA(Ben)
endo TA(David)
endo Reg(Adam, OS)
endo Reg(Adam, AI)
endo Reg(Ben, OS)
endo Reg(Caroline, DB)
endo Reg(Caroline, IC)
`)
	q := repro.MustParseQuery("q1() :- Stud(x), !TA(x), Reg(x, y)")
	solver := &repro.Solver{}

	fmt.Printf("query: %s\n\n", q)
	fmt.Printf("%-20s %12s %15s %15s\n", "fact", "Shapley", "causal effect", "responsibility")
	shapleySum := new(big.Rat)
	for _, f := range d.EndoFacts() {
		sv, err := solver.Shapley(d, q, f)
		if err != nil {
			log.Fatal(err)
		}
		ce, err := repro.CausalEffect(d, q, f)
		if err != nil {
			log.Fatal(err)
		}
		rho, err := repro.Responsibility(d, q, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %12s %15s %15s\n", f, sv.Value.RatString(), ce.RatString(), rho.RatString())
		shapleySum.Add(shapleySum, sv.Value)
	}
	fmt.Printf("\nShapley values sum to %s = q(D) - q(Dx) (efficiency);\n", shapleySum.RatString())
	fmt.Println("causal effect and responsibility are not efficient, and responsibility")
	fmt.Println("is sign-blind: it cannot tell helpful facts (Reg) from harmful ones (TA).")
}
