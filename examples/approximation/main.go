// Approximation: why negation breaks multiplicative approximation (§5).
// The additive Monte-Carlo FPRAS works fine, but the §5.1 gap construction
// makes the true value exponentially small while nonzero — indistinguishable
// from zero with polynomially many samples.
package main

//repolint:allow-file numericpurity: pedagogical closed-form n!·n!/(2n+1)! computation mirroring the §5.1 text — example code outside the kernel's domain

import (
	"fmt"
	"log"
	"math/big"
	"math/rand"

	"repro"
)

func main() {
	// Part 1: the additive FPRAS on the running example.
	d := repro.MustParseDatabase(`
exo  Stud(Adam)
exo  Stud(Ben)
endo TA(Adam)
endo Reg(Adam, OS)
endo Reg(Adam, AI)
endo Reg(Ben, OS)
`)
	q := repro.MustParseQuery("q() :- Stud(x), !TA(x), Reg(x, y)")
	f := repro.NewFact("TA", "Adam")
	exact, err := repro.ShapleyHierarchical(d, q, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact Shapley(TA(Adam)) = %s\n", exact.RatString())
	rng := rand.New(rand.NewSource(1))
	for _, eps := range []float64{0.2, 0.1, 0.05} {
		res, err := repro.MonteCarloShapley(d, q, f, eps, 0.05, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ε=%.2f: estimate %+.4f from %6d samples\n", eps, res.Estimate, res.Samples)
	}

	// Part 2: the gap-property violation. For q() :- R(x), S(x,y), ¬R(y)
	// the §5.1 database makes Shapley(f) = n!·n!/(2n+1)! ≤ 2^-n.
	gapQ := repro.MustParseQuery("q() :- R(x), S(x, y), !R(y)")
	fmt.Printf("\ngap construction for %s:\n", gapQ)
	for _, n := range []int{2, 4, 8, 16} {
		val := gapValue(n)
		dec, _ := val.Float64()
		fmt.Printf("  n=%2d: Shapley(f) = %.3g  (nonzero, but below 2^-%d)\n", n, dec, n)
	}

	// At n=8 the value is ~1/24310: 2000 samples almost surely report 0.
	dGap, fGap := gapDatabase(8)
	res, err := repro.MonteCarloShapleyN(dGap, gapQ, fGap, 2000, rng)
	if err != nil {
		log.Fatal(err)
	}
	val := gapValue(8)
	dec, _ := val.Float64()
	fmt.Printf("\nn=8: exact value %.3g, Monte-Carlo estimate from 2000 samples: %v\n", dec, res.Estimate)
	fmt.Println("An additive scheme cannot certify nonzeroness here — the reason a")
	fmt.Println("multiplicative FPRAS does not follow from sampling once negation is present.")
}

// gapValue returns n!·n!/(2n+1)!.
func gapValue(n int) *big.Rat {
	fact := func(k int) *big.Int {
		out := big.NewInt(1)
		for i := 2; i <= k; i++ {
			out.Mul(out, big.NewInt(int64(i)))
		}
		return out
	}
	return new(big.Rat).SetFrac(new(big.Int).Mul(fact(n), fact(n)), fact(2*n+1))
}

// gapDatabase builds the §5.1 instance: S(x_i, y_i) exogenous for
// i = 0..2n, R(x_i) exogenous and R(y_i) endogenous for i = 1..n, and
// R(x_i) endogenous for i ∈ {0, n+1..2n}; f = R(x_0).
func gapDatabase(n int) (*repro.Database, repro.Fact) {
	d := repro.NewDatabase()
	for i := 0; i <= 2*n; i++ {
		d.MustAddExo(repro.NewFact("S", fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", i)))
	}
	for i := 1; i <= n; i++ {
		d.MustAddExo(repro.NewFact("R", fmt.Sprintf("x%d", i)))
		d.MustAddEndo(repro.NewFact("R", fmt.Sprintf("y%d", i)))
	}
	d.MustAddEndo(repro.NewFact("R", "x0"))
	for i := n + 1; i <= 2*n; i++ {
		d.MustAddEndo(repro.NewFact("R", fmt.Sprintf("x%d", i)))
	}
	return d, repro.NewFact("R", "x0")
}
