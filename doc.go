// Package repro is a complete Go implementation of
//
//	Alon Reshef, Benny Kimelfeld, Ester Livshits:
//	"The Impact of Negation on the Complexity of the Shapley Value in
//	Conjunctive Queries" (PODS 2020, arXiv:1912.12610),
//
// built from scratch on the standard library. It provides:
//
//   - a relational database substrate with endogenous and exogenous facts
//     (the players and the fixed context of the Shapley game),
//   - Boolean conjunctive queries with safe negation (CQ¬) and unions
//     thereof (UCQ¬), with a parser, structural analyses (hierarchy,
//     non-hierarchical triplets and paths, polarity consistency) and a
//     homomorphism evaluator,
//   - exact Shapley value computation: polynomial-time for hierarchical
//     self-join-free CQ¬s (Theorem 3.1), extended by the ExoShap algorithm
//     to every self-join-free CQ¬ without a non-hierarchical path when some
//     relations are declared exogenous (Theorem 4.3), plus exponential
//     brute-force oracles for everything else,
//   - a batched, parallel all-facts engine (Solver.ShapleyAllBatch with
//     BatchOptions{Workers, OnResult}): the query is validated and
//     classified once, ExoShap runs once per batch, the fact-independent
//     parts of the CntSat dynamic program (relevance partition, free-filler
//     binomials, per-bucket tables and their leave-one-out convolution
//     product) are shared, and per-fact work fans across a worker pool
//     with deterministic output order — Solver.ShapleyAll delegates to it,
//   - the Engine/Plan API v2 (NewEngine with WithWorkers / WithBruteForce
//     / WithExoRelations / WithPrepareParallelism → Engine.Prepare /
//     PrepareUCQ → Plan): a versioned, incrementally maintainable compute
//     handle whose Shapley/ShapleyAll accept a context.Context for
//     cancellation, and whose Apply evolves the snapshot under a Delta by
//     recomputing only the DP buckets the delta touches (content-keyed
//     memoization + exact polynomial division of the bucket product) —
//     bit-identical to a fresh preparation and roughly an order of
//     magnitude cheaper for single-fact deltas. WithPrepareParallelism
//     fans tree construction (and Apply's spine rebuilds) across builder
//     goroutines over a sharded node store, again bit-identical at every
//     setting; cmd/benchreport's -cpu flag records the resulting scaling
//     curves in its JSON artifact under "scaling". See docs/api.md for
//     the migration table from the deprecated PreparedBatch surface,
//   - a batched UCQ engine (Solver.ShapleyAllUCQ) and a parallel,
//     context-cancellable brute-force oracle (BruteForceShapleyAllWorkers)
//     that splits the 2^m subset scan by mask range across workers,
//   - a serving layer (internal/server + cmd/shapleyd): an HTTP/JSON
//     attribution server with mutable, versioned registered databases
//     (PATCH applies deltas and patches cached plans in place), a
//     cross-query LRU plan cache (internal/servercache) with single-flight
//     cold paths, and chunked NDJSON streaming of mode=all batches — see
//     docs/server.md,
//   - a cluster layer (internal/cluster, `shapleyd -mode=router`,
//     docs/cluster.md): a stateless router sharding database ids onto a
//     replicated consistent-hash ring of stock shapleyd workers, with
//     PATCH fan-out in per-database total order, scatter-gathered and
//     re-streamed mode=all (range splitting rides the per-fact
//     independence of the batch engine), a bounded coalescing window
//     merging concurrent single-fact requests into one sweep and PATCH
//     bursts into one delta, health-probed automatic failover (including
//     mid-stream re-request of the undelivered suffix), and snapshot
//     warm-up that ships a live replica's plan memos to a rejoining
//     worker — routed answers are bit-identical to a single process,
//   - an always-on observability layer (internal/obs, docs/observability.md):
//     context-carried phase spans across the whole compute stack (prepare,
//     apply, per-worker batch work, DP-tree toggles, weighting) that
//     allocate only when a request opts in with ?trace=1 (or the CLI's
//     -trace), trace-id propagation via X-Trace-Id, per-route and
//     per-phase atomic latency histograms on /metrics, structured
//     log/slog JSON logs with slow-query warnings, and an isolated
//     net/http/pprof listener behind -pprof-addr,
//   - the additive Monte-Carlo FPRAS of §5.1 and the machinery showing why
//     no multiplicative FPRAS exists in general (gap-property witnesses,
//     relevance hardness reductions),
//   - relevance decision procedures (Definition 5.2): polynomial for
//     polarity-consistent CQ¬s and UCQ¬s (Proposition 5.7, Algorithms 2-3),
//   - aggregate (Count/Sum) Shapley values over CQ¬s by linearity (§3), and
//   - tuple-independent probabilistic databases with exact lifted inference
//     and the deterministic-relation extension (Theorem 4.10).
//
// All values are exact rationals; the paper's Example 2.3 values (−3/28,
// −2/35, 37/210, 27/140, 13/42) are reproduced bit-for-bit. Internally the
// counting runs on an adaptive exact numeric kernel (internal/numeric):
// subset counts live in the minimal of u64/u128/big.Int and promote
// automatically on overflow, so the hot convolution loops run on flat
// machine words while remaining bit-identical to pure math/big arithmetic
// by construction. Only the final Shapley weighting k!(m−1−k)!/m! uses
// big.Rat.
//
// These invariants — count arithmetic confined to the kernel, DP-tree
// nodes immutable after interning, context threading on every blocking
// path, no ordered output from map iteration, no blocking work under a
// held server mutex, every obs.Start span ended on all paths — are
// enforced mechanically by a repo-specific
// static-analysis suite (internal/analysis, run via `go run
// ./cmd/repolint ./...` or as a `go vet -vettool`); see docs/analysis.md.
//
// # Quick start
//
// The module is named "repro" (see go.mod; building requires it — the
// tier-1 check is `go build ./... && go test ./...` from the repo root):
//
//	d := repro.MustParseDatabase(`
//	exo  Stud(Ann)
//	endo TA(Ann)
//	endo Reg(Ann, OS)
//	`)
//	q := repro.MustParseQuery("q() :- Stud(x), !TA(x), Reg(x, y)")
//	solver := &repro.Solver{}
//	values, err := solver.ShapleyAll(d, q)
//
// For large all-facts workloads, control the batch engine directly:
//
//	values, err := solver.ShapleyAllBatch(d, q, repro.BatchOptions{
//		Workers:  8,
//		OnResult: func(v *repro.ShapleyValue) { fmt.Println(v) },
//	})
//
// When the same database and query will be hit repeatedly (a serving
// layer), prepare a Plan once and reuse it; the handle is versioned,
// cancellable and maintainable under deltas:
//
//	eng := repro.NewEngine(repro.WithWorkers(8))
//	plan, err := eng.Prepare(ctx, d, q)
//	v, err := plan.Shapley(ctx, f)                        // per-fact
//	values, err := plan.ShapleyAll(ctx, repro.BatchOptions{})
//	_, err = plan.Apply(ctx, repro.Delta{AddEndo: []repro.Fact{f2}})
//
// The `shapleyd` daemon (cmd/shapleyd, docs/server.md) does exactly that
// behind an HTTP/JSON API: an LRU plan cache across queries, PATCH deltas
// that maintain cached plans in place, and NDJSON streaming of all-facts
// batches.
//
// See examples/ for runnable programs, DESIGN.md for the system inventory
// and EXPERIMENTS.md for the paper-vs-measured record.
package repro
