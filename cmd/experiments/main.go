// Command experiments regenerates the paper's figures and quantitative
// claims (the experiment index in DESIGN.md). Each experiment prints its
// table and fails loudly if a paper-derived expectation is violated.
//
// Usage:
//
//	experiments            # run everything
//	experiments -run E07   # run one experiment
//	experiments -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		runIDs = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		list   = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%s  %-60s (%s)\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var selected []experiments.Experiment
	if *runIDs == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		fmt.Printf("reproduces: %s\n\n", e.Paper)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "\n%s FAILED: %v\n", e.ID, err)
			failed++
		}
		fmt.Println()
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
