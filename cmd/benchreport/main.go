// Command benchreport runs the repository's canonical benchmarks and
// writes a machine-readable JSON report, starting the bench trajectory
// the ROADMAP calls for: every PR can regenerate the same numbers
// and diff them against a committed baseline.
//
// The canonical benches:
//
//	BenchmarkShapleyAllBatch        (repro, the 94-endo-fact mode=all batch + ExoShap variant)
//	BenchmarkPlanApplyDelta         (repro/internal/core, top-level single-fact Apply vs fresh Prepare)
//	BenchmarkPlanApplyDeepDelta     (repro/internal/core, deep-delta spine reuse)
//	BenchmarkPrepareWorkload        (repro/internal/core, fresh Prepare on generator-scaled instances)
//	BenchmarkShapleyAllWorkload     (repro/internal/core, mode=all on generator-scaled instances)
//	BenchmarkServerRepeatedQuery    (repro/internal/server, cold/warm serving paths)
//	BenchmarkClusterSingleFact      (repro/internal/cluster, router-coalesced vs direct single-fact throughput)
//
// Usage:
//
//	go run ./cmd/benchreport                      # run, print JSON to stdout
//	go run ./cmd/benchreport -out BENCH.json      # run, write report
//	go run ./cmd/benchreport -baseline old.json -out BENCH_PR5.json
//	                                              # run, embed old.json as "before"
//	go run ./cmd/benchreport -benchtime 20x       # override iteration count
//	go run ./cmd/benchreport -cpu 1,2,4,8         # additionally record scaling curves
//	go run ./cmd/benchreport -baseline BENCH.json -gate 'BenchmarkPrepareWorkload/exoshap=0.85'
//	                                              # exit 1 on a >15% latency regression
//
// With -baseline, the report has the shape {"before": …, "after": …,
// "speedup": {bench: before_ns/after_ns}}; without it, a flat run report.
// Benches measured with -benchmem on both sides additionally get a
// "bench#allocs" speedup key (before_allocs/after_allocs), so allocation
// regressions on the pooled hot paths are visible in the same artifact
// as the latency ones.
// With -cpu, the workload benchmarks (the scaling subset) are re-run once
// per GOMAXPROCS value and the per-cpu results land in "scaling":
// {bench: {"4": {…, "cpus": 4}}}; scaling entries diff against a baseline
// under "speedup" keys of the form "bench@4". Every result records the
// GOMAXPROCS suffix go test printed ("cpus"), so a regression that only
// shows at one parallelism level is visible in the artifact.
// With -gate (requires -baseline), the tool becomes a CI regression
// guard: each comma-separated prefix=min entry asserts that every
// ns-based speedup key starting with the prefix stays at or above min
// (allocation "#…" keys are informational and never gated); a prefix
// that matches no key fails too, so a renamed benchmark cannot silently
// disable its gate.
// The tool shells out to `go test -run ^$ -bench …` (the Go toolchain is
// a build-time dependency of this repository anyway) and parses the
// standard benchmark output lines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// target is one benchmark invocation.
type target struct {
	Pkg   string
	Bench string
}

var targets = []target{
	{Pkg: ".", Bench: "BenchmarkShapleyAllBatch"}, // also matches the ExoShap variant
	{Pkg: "./internal/core/", Bench: "BenchmarkPlanApplyDelta"},
	{Pkg: "./internal/core/", Bench: "BenchmarkPlanApplyDeepDelta"},
	{Pkg: "./internal/core/", Bench: "BenchmarkPrepareWorkload"},
	{Pkg: "./internal/core/", Bench: "BenchmarkShapleyAllWorkload"},
	{Pkg: "./internal/server/", Bench: "BenchmarkServerRepeatedQuery"},
	{Pkg: "./internal/cluster/", Bench: "BenchmarkClusterSingleFact"},
}

// scalingTargets is the -cpu subset: benchmarks whose parallelism follows
// GOMAXPROCS (builder fan-out via WithPrepareParallelism(-1), worker
// pools via Workers: 0), so varying -cpu traces a real scaling curve.
var scalingTargets = []target{
	{Pkg: "./internal/core/", Bench: "BenchmarkPrepareWorkload"},
	{Pkg: "./internal/core/", Bench: "BenchmarkShapleyAllWorkload"},
}

// Result is the parsed measurement of one benchmark (sub)test.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Iterations  int64   `json:"iterations"`
	// Cpus is the GOMAXPROCS the benchmark ran at — the "-N" name suffix
	// go test prints (absent when N was 1, recorded as 1).
	Cpus int `json:"cpus,omitempty"`
}

// Run is one full benchmark sweep.
type Run struct {
	GoVersion string            `json:"go_version"`
	GOOS      string            `json:"goos"`
	GOARCH    string            `json:"goarch"`
	NumCPU    int               `json:"num_cpu"`
	Benchtime string            `json:"benchtime"`
	Date      string            `json:"date,omitempty"`
	Benches   map[string]Result `json:"benches"`
	// Scaling holds the -cpu sweep: bench name -> GOMAXPROCS (as a
	// string, for JSON-map stability) -> measurement at that width.
	Scaling map[string]map[string]Result `json:"scaling,omitempty"`
}

// Report is the committed artifact: a plain run, or a before/after pair.
type Report struct {
	Before  *Run               `json:"before,omitempty"`
	After   *Run               `json:"after,omitempty"`
	Speedup map[string]float64 `json:"speedup,omitempty"`
	*Run    `json:",omitempty"`
}

// benchLine matches e.g.
// "BenchmarkPlanApplyDelta/apply-delta-8  100  133082 ns/op  134105 B/op  666 allocs/op"
// capturing the GOMAXPROCS suffix ("-8") that older revisions discarded.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parsedBench is one parsed output line. A -cpu sweep emits the same
// benchmark name several times with different GOMAXPROCS suffixes, so
// lines must stay distinct until the caller decides the map key.
type parsedBench struct {
	Name string
	R    Result
}

// parseBenchLines extracts the benchmark lines from go test -bench output.
func parseBenchLines(out string) []parsedBench {
	var res []parsedBench
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		cpus := 1
		if m[2] != "" {
			cpus, _ = strconv.Atoi(m[2])
		}
		iters, _ := strconv.ParseInt(m[3], 10, 64)
		ns, _ := strconv.ParseFloat(m[4], 64)
		r := Result{NsPerOp: ns, Iterations: iters, Cpus: cpus}
		if m[5] != "" {
			r.BytesPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		if m[6] != "" {
			r.AllocsPerOp, _ = strconv.ParseFloat(m[6], 64)
		}
		res = append(res, parsedBench{Name: m[1], R: r})
	}
	return res
}

// benchOut runs one go test -bench invocation and returns its output.
func benchOut(tg target, benchtime, cpu string, verbose bool) (string, error) {
	pattern := tg.Bench + "$"
	if tg.Bench == "BenchmarkShapleyAllBatch" {
		// Prefix match on purpose: picks up the ExoShap variant too.
		pattern = tg.Bench
	}
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchtime", benchtime, "-benchmem"}
	if cpu != "" {
		args = append(args, "-cpu", cpu)
	}
	args = append(args, tg.Pkg)
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	if verbose {
		fmt.Fprint(os.Stderr, string(out))
	}
	return string(out), nil
}

func runTargets(benchtime, cpus string, verbose bool) (*Run, error) {
	run := &Run{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Benchtime: benchtime,
		Date:      time.Now().UTC().Format(time.RFC3339),
		Benches:   map[string]Result{},
	}
	for _, tg := range targets {
		out, err := benchOut(tg, benchtime, "", verbose)
		if err != nil {
			return nil, err
		}
		for _, p := range parseBenchLines(out) {
			run.Benches[p.Name] = p.R
		}
	}
	if len(run.Benches) == 0 {
		return nil, fmt.Errorf("no benchmark lines parsed")
	}
	if cpus == "" {
		return run, nil
	}
	run.Scaling = map[string]map[string]Result{}
	for _, tg := range scalingTargets {
		out, err := benchOut(tg, benchtime, cpus, verbose)
		if err != nil {
			return nil, err
		}
		for _, p := range parseBenchLines(out) {
			if run.Scaling[p.Name] == nil {
				run.Scaling[p.Name] = map[string]Result{}
			}
			run.Scaling[p.Name][strconv.Itoa(p.R.Cpus)] = p.R
		}
	}
	return run, nil
}

// speedups diffs the current run against a baseline: canonical benches
// under their names, scaling entries under "name@cpus", and allocation
// ratios under "name#allocs" / "name@cpus#allocs" when both runs carried
// -benchmem counts.
func speedups(before, cur *Run) map[string]float64 {
	out := map[string]float64{}
	diff := func(key string, b, after Result) {
		if after.NsPerOp > 0 {
			out[key] = b.NsPerOp / after.NsPerOp
		}
		if after.AllocsPerOp > 0 && b.AllocsPerOp > 0 {
			out[key+"#allocs"] = b.AllocsPerOp / after.AllocsPerOp
		}
	}
	for name, after := range cur.Benches {
		if b, ok := before.Benches[name]; ok {
			diff(name, b, after)
		}
	}
	for name, curve := range cur.Scaling {
		base, ok := before.Scaling[name]
		if !ok {
			continue
		}
		for cpus, after := range curve {
			if b, ok := base[cpus]; ok {
				diff(name+"@"+cpus, b, after)
			}
		}
	}
	return out
}

// gateEntry is one parsed -gate requirement.
type gateEntry struct {
	Prefix string
	Min    float64
}

// parseGates parses the -gate flag: comma-separated prefix=min entries.
func parseGates(spec string) ([]gateEntry, error) {
	var gates []gateEntry
	for _, part := range strings.Split(spec, ",") {
		prefix, minStr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || prefix == "" {
			return nil, fmt.Errorf("bad -gate entry %q (want prefix=min)", part)
		}
		min, err := strconv.ParseFloat(minStr, 64)
		if err != nil || min <= 0 {
			return nil, fmt.Errorf("bad -gate minimum in %q (want a positive speedup ratio)", part)
		}
		gates = append(gates, gateEntry{Prefix: prefix, Min: min})
	}
	return gates, nil
}

// checkGates returns one violation message per failed gate, in sorted
// key order. Only ns-based keys are gated: allocation "#…" keys stay
// informational.
func checkGates(gates []gateEntry, speedup map[string]float64) []string {
	keys := make([]string, 0, len(speedup))
	for key := range speedup {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var violations []string
	for _, g := range gates {
		matched := false
		for _, key := range keys {
			if strings.Contains(key, "#") || !strings.HasPrefix(key, g.Prefix) {
				continue
			}
			matched = true
			if v := speedup[key]; v < g.Min {
				violations = append(violations,
					fmt.Sprintf("%s: speedup %.3f below gate %.3f (a %.0f%% regression fails)",
						key, v, g.Min, (1-g.Min)*100))
			}
		}
		if !matched {
			violations = append(violations,
				fmt.Sprintf("gate %q matched no benchmark (renamed or missing from the baseline?)", g.Prefix))
		}
	}
	return violations
}

func main() {
	var (
		out       = flag.String("out", "", "write the JSON report here (default: stdout)")
		baseline  = flag.String("baseline", "", "prior report to embed as \"before\" (a flat run or a before/after report, whose \"after\" is used)")
		benchtime = flag.String("benchtime", "10x", "benchtime passed to go test")
		cpu       = flag.String("cpu", "", "comma-separated GOMAXPROCS values (e.g. 1,2,4,8); when set, the workload benchmarks are re-run per value and recorded under \"scaling\"")
		gate      = flag.String("gate", "", "regression gates as prefix=min,…: fail (exit 1) when any ns-based speedup key starting with prefix is below min; requires -baseline")
		verbose   = flag.Bool("v", false, "stream go test output to stderr")
	)
	flag.Parse()

	var gates []gateEntry
	if *gate != "" {
		var err error
		if gates, err = parseGates(*gate); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(2)
		}
		if *baseline == "" {
			fmt.Fprintln(os.Stderr, "benchreport: -gate requires -baseline")
			os.Exit(2)
		}
	}

	cur, err := runTargets(*benchtime, *cpu, *verbose)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}

	var report any = &Report{Run: cur}
	var speedup map[string]float64
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		var prior Report
		if err := json.Unmarshal(raw, &prior); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport: parse baseline:", err)
			os.Exit(1)
		}
		before := prior.Run
		if prior.After != nil {
			before = prior.After
		}
		if before == nil || before.Benches == nil {
			fmt.Fprintln(os.Stderr, "benchreport: baseline has no benches")
			os.Exit(1)
		}
		speedup = speedups(before, cur)
		report = &Report{Before: before, After: cur, Speedup: speedup}
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d benches)\n", *out, len(cur.Benches))
	}

	// Gates run after the report is written, so a failing CI job still
	// uploads the artifact that explains the failure.
	if violations := checkGates(gates, speedup); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchreport: gate:", v)
		}
		os.Exit(1)
	}
}
