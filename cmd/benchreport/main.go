// Command benchreport runs the repository's canonical benchmarks and
// writes a machine-readable JSON report, starting the bench trajectory
// the ROADMAP calls for: every PR can regenerate the same numbers
// and diff them against a committed baseline.
//
// The canonical benches:
//
//	BenchmarkShapleyAllBatch        (repro, the 94-endo-fact mode=all batch + ExoShap variant)
//	BenchmarkPlanApplyDelta         (repro/internal/core, top-level single-fact Apply vs fresh Prepare)
//	BenchmarkPlanApplyDeepDelta     (repro/internal/core, deep-delta spine reuse)
//	BenchmarkServerRepeatedQuery    (repro/internal/server, cold/warm serving paths)
//	BenchmarkClusterSingleFact      (repro/internal/cluster, router-coalesced vs direct single-fact throughput)
//
// Usage:
//
//	go run ./cmd/benchreport                      # run, print JSON to stdout
//	go run ./cmd/benchreport -out BENCH.json      # run, write report
//	go run ./cmd/benchreport -baseline old.json -out BENCH_PR5.json
//	                                              # run, embed old.json as "before"
//	go run ./cmd/benchreport -benchtime 20x       # override iteration count
//
// With -baseline, the report has the shape {"before": …, "after": …,
// "speedup": {bench: before_ns/after_ns}}; without it, a flat run report.
// The tool shells out to `go test -run ^$ -bench …` (the Go toolchain is
// a build-time dependency of this repository anyway) and parses the
// standard benchmark output lines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// target is one benchmark invocation.
type target struct {
	Pkg   string
	Bench string
}

var targets = []target{
	{Pkg: ".", Bench: "BenchmarkShapleyAllBatch"}, // also matches the ExoShap variant
	{Pkg: "./internal/core/", Bench: "BenchmarkPlanApplyDelta"},
	{Pkg: "./internal/core/", Bench: "BenchmarkPlanApplyDeepDelta"},
	{Pkg: "./internal/server/", Bench: "BenchmarkServerRepeatedQuery"},
	{Pkg: "./internal/cluster/", Bench: "BenchmarkClusterSingleFact"},
}

// Result is the parsed measurement of one benchmark (sub)test.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Iterations  int64   `json:"iterations"`
}

// Run is one full benchmark sweep.
type Run struct {
	GoVersion string            `json:"go_version"`
	GOOS      string            `json:"goos"`
	GOARCH    string            `json:"goarch"`
	Benchtime string            `json:"benchtime"`
	Date      string            `json:"date,omitempty"`
	Benches   map[string]Result `json:"benches"`
}

// Report is the committed artifact: a plain run, or a before/after pair.
type Report struct {
	Before  *Run               `json:"before,omitempty"`
	After   *Run               `json:"after,omitempty"`
	Speedup map[string]float64 `json:"speedup,omitempty"`
	*Run    `json:",omitempty"`
}

// benchLine matches e.g.
// "BenchmarkPlanApplyDelta/apply-delta  100  133082 ns/op  134105 B/op  666 allocs/op"
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func runTargets(benchtime string, verbose bool) (*Run, error) {
	run := &Run{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: benchtime,
		Date:      time.Now().UTC().Format(time.RFC3339),
		Benches:   map[string]Result{},
	}
	for _, tg := range targets {
		args := []string{"test", "-run", "^$", "-bench", tg.Bench + "$", "-benchtime", benchtime, "-benchmem", tg.Pkg}
		if tg.Bench == "BenchmarkShapleyAllBatch" {
			// Prefix match on purpose: picks up the ExoShap variant too.
			args[4] = tg.Bench
		}
		cmd := exec.Command("go", args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out)
		}
		if verbose {
			fmt.Fprint(os.Stderr, string(out))
		}
		for _, line := range strings.Split(string(out), "\n") {
			m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			iters, _ := strconv.ParseInt(m[2], 10, 64)
			ns, _ := strconv.ParseFloat(m[3], 64)
			r := Result{NsPerOp: ns, Iterations: iters}
			if m[4] != "" {
				r.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
			}
			if m[5] != "" {
				r.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
			}
			run.Benches[m[1]] = r
		}
	}
	if len(run.Benches) == 0 {
		return nil, fmt.Errorf("no benchmark lines parsed")
	}
	return run, nil
}

func main() {
	var (
		out       = flag.String("out", "", "write the JSON report here (default: stdout)")
		baseline  = flag.String("baseline", "", "prior report to embed as \"before\" (a flat run or a before/after report, whose \"after\" is used)")
		benchtime = flag.String("benchtime", "10x", "benchtime passed to go test")
		verbose   = flag.Bool("v", false, "stream go test output to stderr")
	)
	flag.Parse()

	cur, err := runTargets(*benchtime, *verbose)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}

	var report any = &Report{Run: cur}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		var prior Report
		if err := json.Unmarshal(raw, &prior); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport: parse baseline:", err)
			os.Exit(1)
		}
		before := prior.Run
		if prior.After != nil {
			before = prior.After
		}
		if before == nil || before.Benches == nil {
			fmt.Fprintln(os.Stderr, "benchreport: baseline has no benches")
			os.Exit(1)
		}
		speedup := map[string]float64{}
		for name, after := range cur.Benches {
			if b, ok := before.Benches[name]; ok && after.NsPerOp > 0 {
				speedup[name] = b.NsPerOp / after.NsPerOp
			}
		}
		report = &Report{Before: before, After: cur, Speedup: speedup}
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d benches)\n", *out, len(cur.Benches))
}
