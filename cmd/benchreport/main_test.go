package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseBenchLines(t *testing.T) {
	out := `
goos: linux
BenchmarkPrepareWorkload/exoshap-1.5k-8     	     100	   9125719 ns/op	 5120000 B/op	   37742 allocs/op
BenchmarkPrepareWorkload/hierarchical-50k   	      10	 163815351 ns/op
PASS
`
	got := parseBenchLines(out)
	want := []parsedBench{
		{Name: "BenchmarkPrepareWorkload/exoshap-1.5k", R: Result{
			NsPerOp: 9125719, BytesPerOp: 5120000, AllocsPerOp: 37742, Iterations: 100, Cpus: 8}},
		{Name: "BenchmarkPrepareWorkload/hierarchical-50k", R: Result{
			NsPerOp: 163815351, Iterations: 10, Cpus: 1}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseBenchLines:\n got %+v\nwant %+v", got, want)
	}
}

func TestSpeedupsIncludesAllocRatios(t *testing.T) {
	before := &Run{
		Benches: map[string]Result{
			"B/x": {NsPerOp: 100, AllocsPerOp: 50},
			"B/y": {NsPerOp: 200}, // no -benchmem count: no #allocs key
		},
		Scaling: map[string]map[string]Result{
			"B/x": {"4": {NsPerOp: 40, AllocsPerOp: 50, Cpus: 4}},
		},
	}
	cur := &Run{
		Benches: map[string]Result{
			"B/x": {NsPerOp: 10, AllocsPerOp: 5},
			"B/y": {NsPerOp: 100, AllocsPerOp: 7},
			"B/z": {NsPerOp: 1}, // new bench: no baseline, no keys
		},
		Scaling: map[string]map[string]Result{
			"B/x": {"4": {NsPerOp: 10, AllocsPerOp: 10, Cpus: 4}},
		},
	}
	got := speedups(before, cur)
	want := map[string]float64{
		"B/x": 10, "B/x#allocs": 10,
		"B/y":   2,
		"B/x@4": 4, "B/x@4#allocs": 5,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("speedups:\n got %v\nwant %v", got, want)
	}
}

func TestParseGates(t *testing.T) {
	gates, err := parseGates("BenchmarkPrepareWorkload/exoshap=0.85, B=1.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []gateEntry{
		{Prefix: "BenchmarkPrepareWorkload/exoshap", Min: 0.85},
		{Prefix: "B", Min: 1.5},
	}
	if !reflect.DeepEqual(gates, want) {
		t.Fatalf("parseGates: got %+v, want %+v", gates, want)
	}
	for _, bad := range []string{"", "noequals", "=0.5", "p=", "p=zero", "p=-1"} {
		if _, err := parseGates(bad); err == nil {
			t.Errorf("parseGates(%q): expected error", bad)
		}
	}
}

func TestCheckGates(t *testing.T) {
	speedup := map[string]float64{
		"BenchmarkPrepareWorkload/exoshap-1.5k":       0.90,
		"BenchmarkPrepareWorkload/exoshap-50k":        0.80,
		"BenchmarkPrepareWorkload/exoshap-50k#allocs": 0.10, // informational, never gated
		"BenchmarkPrepareWorkload/hierarchical-50k":   0.50, // outside the prefix
	}
	gate := []gateEntry{{Prefix: "BenchmarkPrepareWorkload/exoshap", Min: 0.85}}

	violations := checkGates(gate, speedup)
	if len(violations) != 1 || !strings.Contains(violations[0], "exoshap-50k") {
		t.Fatalf("want exactly the exoshap-50k violation, got %v", violations)
	}

	// All above the bar: clean.
	speedup["BenchmarkPrepareWorkload/exoshap-50k"] = 0.86
	if v := checkGates(gate, speedup); len(v) != 0 {
		t.Fatalf("want no violations, got %v", v)
	}

	// A prefix matching nothing must fail rather than silently pass.
	ghost := []gateEntry{{Prefix: "BenchmarkRenamed", Min: 0.85}}
	if v := checkGates(ghost, speedup); len(v) != 1 || !strings.Contains(v[0], "matched no benchmark") {
		t.Fatalf("want the no-match violation, got %v", v)
	}
}
