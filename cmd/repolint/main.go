// Command repolint runs the repo-specific static-analysis suite
// (internal/analysis) that mechanically enforces the reproduction's
// kernel, DP-tree and concurrency invariants. See docs/analysis.md for
// the catalogue.
//
// Standalone (the CI lint job runs exactly this):
//
//	go run ./cmd/repolint ./...
//	go run ./cmd/repolint -only numericpurity,ctxflow ./internal/core/...
//
// As a vet tool (unitchecker protocol: cmd/go hands each package a
// .cfg file and export data for its dependencies):
//
//	go build -o /tmp/repolint ./cmd/repolint
//	go vet -vettool=/tmp/repolint ./...
//
// Exit status is 2 when any diagnostic is reported, 1 on operational
// errors, 0 on a clean tree.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	versionFlag := flag.String("V", "", "print version (go vet handshake: -V=full)")
	flagsFlag := flag.Bool("flags", false, "print the tool's flag definitions as JSON (go vet handshake)")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repolint [-only names] packages...\n       go vet -vettool=$(which repolint) ./...\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *versionFlag != "" {
		// cmd/go's vettool handshake: print a stable identity line; the
		// content only needs to change when the tool's behavior does, so
		// hash the executable.
		name := filepath.Base(os.Args[0])
		self, err := os.Executable()
		sum := []byte("unknown")
		if err == nil {
			if data, err := os.ReadFile(self); err == nil {
				h := sha256.Sum256(data)
				sum = h[:8]
			}
		}
		fmt.Printf("%s version devel buildID=%x\n", name, sum)
		return 0
	}
	if *flagsFlag {
		// cmd/go asks which per-analyzer flags the tool exposes so it can
		// pass them through; repolint exposes none on the vet path.
		fmt.Println("[]")
		return 0
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "repolint: unknown analyzer %q\n", name)
				return 1
			}
			analyzers = append(analyzers, a)
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVetUnit(analyzers, args[0])
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 1
	}
	diags, err := analysis.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// vetConfig is the subset of cmd/go's vet config file the unit mode
// needs (the same wire format x/tools' unitchecker consumes).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package under the go vet unitchecker protocol:
// sources are parsed from the cfg's file list and dependencies are
// imported from the export data cmd/go already built.
func runVetUnit(analyzers []*analysis.Analyzer, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "repolint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOnly {
		// cmd/go only wants this package's facts (it is a dependency of
		// the packages under vet, not itself under vet); repolint's
		// analyzers exchange no facts, so there is nothing to compute.
		return writeVetx(cfg.VetxOutput)
	}
	if isTestVariant(cfg.ImportPath, cfg.GoFiles) {
		// Test-augmented packages ("p [p.test]", "p_test [p.test]", the
		// generated test main) include _test.go files, which the suite
		// deliberately exempts: the invariants bind production code, and
		// tests legitimately mint contexts and do reference arithmetic.
		// This matches the standalone driver, which loads GoFiles only.
		return writeVetx(cfg.VetxOutput)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg.VetxOutput)
			}
			fmt.Fprintln(os.Stderr, "repolint:", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg.VetxOutput)
		}
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 1
	}

	pkg := &analysis.Package{
		Path: cfg.ImportPath, Dir: cfg.Dir, Fset: fset,
		Files: files, Types: tpkg, Info: info, Target: true,
	}
	diags, err := analysis.Run(analyzers, []*analysis.Package{pkg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 1
	}
	if rc := writeVetx(cfg.VetxOutput); rc != 0 {
		return rc
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// isTestVariant recognizes the units cmd/go builds for tests: the
// test-augmented package, the external _test package and the generated
// test main. The file list is the reliable signal — a unit carrying any
// _test.go (or the generated _testmain.go) is a test build.
func isTestVariant(path string, goFiles []string) bool {
	if strings.Contains(path, " [") || strings.HasSuffix(path, ".test") ||
		strings.HasSuffix(path, "_test") {
		return true
	}
	for _, f := range goFiles {
		if strings.HasSuffix(f, "_test.go") || strings.HasSuffix(f, "_testmain.go") {
			return true
		}
	}
	return false
}

// writeVetx emits the (empty) facts file the go command expects every
// vet tool to produce; repolint's analyzers exchange no facts.
func writeVetx(path string) int {
	if path == "" {
		return 0
	}
	if err := os.WriteFile(path, []byte{}, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 1
	}
	return 0
}
