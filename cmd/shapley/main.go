// Command shapley computes Shapley values, classifications and relevance
// for facts of a database with respect to a CQ¬, from the command line.
//
// Usage:
//
//	shapley -db university.db -query 'q() :- Stud(x), !TA(x), Reg(x, y)'
//	shapley -db university.db -query-file q.cq -mode classify -exo Stud,Course
//	shapley -db university.db -query '...' -fact 'TA(Adam)' -mode relevance
//	shapley -db university.db -query '...' -mode mc -eps 0.1 -delta 0.05
//
// Database files contain one fact per line: "exo R(a, b)" or "endo S(c)".
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		dbPath    = flag.String("db", "", "path to the database file (required)")
		queryStr  = flag.String("query", "", "CQ¬ in rule syntax")
		queryFile = flag.String("query-file", "", "file containing the query")
		exoList   = flag.String("exo", "", "comma-separated exogenous relations (the set X of Theorem 4.3)")
		factStr   = flag.String("fact", "", "single fact to analyze (default: all endogenous facts)")
		mode      = flag.String("mode", "shapley", "shapley | classify | relevance | mc | satcount | measures")
		brute     = flag.Bool("brute-force", false, "allow exponential brute force on intractable queries")
		eps       = flag.Float64("eps", 0.1, "additive error for -mode mc")
		delta     = flag.Float64("delta", 0.05, "failure probability for -mode mc")
		seed      = flag.Int64("seed", 1, "random seed for -mode mc")
	)
	flag.Parse()
	if err := run(os.Stdout, *dbPath, *queryStr, *queryFile, *exoList, *factStr, *mode, *brute, *eps, *delta, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "shapley:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, dbPath, queryStr, queryFile, exoList, factStr, mode string, brute bool, eps, delta float64, seed int64) error {
	if dbPath == "" {
		return fmt.Errorf("-db is required")
	}
	raw, err := os.ReadFile(dbPath)
	if err != nil {
		return err
	}
	d, err := repro.ParseDatabase(string(raw))
	if err != nil {
		return err
	}
	if queryFile != "" {
		qraw, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		queryStr = strings.TrimSpace(string(qraw))
	}
	if queryStr == "" {
		return fmt.Errorf("-query or -query-file is required")
	}
	q, err := repro.ParseQuery(queryStr)
	if err != nil {
		return err
	}
	exo := map[string]bool{}
	if exoList != "" {
		for _, r := range strings.Split(exoList, ",") {
			exo[strings.TrimSpace(r)] = true
		}
	}
	facts := d.EndoFacts()
	if factStr != "" {
		f, err := repro.ParseFact(factStr)
		if err != nil {
			return err
		}
		facts = []repro.Fact{f}
	}

	switch mode {
	case "classify":
		c := repro.Classify(q, exo)
		fmt.Fprintf(w, "query:                 %s\n", q)
		fmt.Fprintf(w, "self-join-free:        %v\n", c.SelfJoinFree)
		fmt.Fprintf(w, "hierarchical:          %v\n", c.Hierarchical)
		fmt.Fprintf(w, "polarity consistent:   %v\n", c.PolarityConsistent)
		fmt.Fprintf(w, "non-hierarchical path: %v\n", c.HasNonHierPath)
		if c.PathWitness != nil {
			fmt.Fprintf(w, "  witness: %s→%s via %v\n", c.PathWitness.X, c.PathWitness.Y, c.PathWitness.Path)
		}
		if c.Tractable {
			fmt.Fprintln(w, "verdict: exact Shapley computation is polynomial (Theorems 3.1/4.3)")
		} else {
			fmt.Fprintln(w, "verdict: exact Shapley computation is FP#P-complete (Theorems 3.1/4.3)")
		}
		return nil

	case "shapley":
		solver := &repro.Solver{ExoRelations: exo, AllowBruteForce: brute}
		for _, f := range facts {
			v, err := solver.Shapley(d, q, f)
			if err != nil {
				return fmt.Errorf("%s: %w", f, err)
			}
			fmt.Fprintf(w, "%-30s %s [%s]\n", f.Key(), v.Value.RatString(), v.Method)
		}
		return nil

	case "relevance":
		for _, f := range facts {
			var rel bool
			var err error
			if q.IsPolarityConsistent() {
				rel, err = repro.IsRelevant(d, q, f)
			} else if brute {
				rel, err = repro.IsRelevantBrute(d, q, f)
			} else {
				return fmt.Errorf("%s is not polarity consistent; pass -brute-force for the exponential check", q.Name())
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-30s relevant=%v\n", f.Key(), rel)
		}
		return nil

	case "mc":
		rng := rand.New(rand.NewSource(seed))
		for _, f := range facts {
			res, err := repro.MonteCarloShapley(d, q, f, eps, delta, rng)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-30s %+.5f (n=%d, ±%.3g with prob ≥ %.3g)\n", f.Key(), res.Estimate, res.Samples, eps, 1-delta)
		}
		return nil

	case "satcount":
		sat, err := repro.SatCountVector(d, q)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "k  |Sat(D,q,k)|")
		for k, c := range sat {
			fmt.Fprintf(w, "%-3d%s\n", k, c)
		}
		return nil

	case "measures":
		solver := &repro.Solver{ExoRelations: exo, AllowBruteForce: brute}
		fmt.Fprintf(w, "%-30s %12s %15s %15s\n", "fact", "Shapley", "causal effect", "responsibility")
		for _, f := range facts {
			sv, err := solver.Shapley(d, q, f)
			if err != nil {
				return fmt.Errorf("%s: %w", f, err)
			}
			ce, err := repro.CausalEffect(d, q, f)
			if err != nil {
				return err
			}
			rho, err := repro.Responsibility(d, q, f)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-30s %12s %15s %15s\n", f.Key(), sv.Value.RatString(), ce.RatString(), rho.RatString())
		}
		return nil
	}
	return fmt.Errorf("unknown mode %q", mode)
}
