// Command shapley computes Shapley values, classifications and relevance
// for facts of a database with respect to a CQ¬, from the command line.
//
// Usage:
//
//	shapley -db university.db -query 'q() :- Stud(x), !TA(x), Reg(x, y)'
//	shapley -db university.db -query '...' -all -workers 4
//	shapley -db university.db -query '...' -all -json
//	shapley -db university.db -query-file q.cq -mode classify -exo Stud,Course
//	shapley -db university.db -query '...' -fact 'TA(Adam)' -mode relevance
//	shapley -db university.db -query '...' -mode mc -eps 0.1 -delta 0.05
//
// Database files contain one fact per line: "exo R(a, b)" or "endo S(c)".
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"repro"
	"repro/internal/obs"
	"repro/internal/server"
)

// runOptions carries the parsed command line into run.
type runOptions struct {
	dbPath    string
	query     string
	queryFile string
	exo       string
	fact      string
	mode      string
	all       bool
	explain   bool
	trace     bool
	jsonOut   bool
	workers   int
	brute     bool
	eps       float64
	delta     float64
	seed      int64
}

func main() {
	var o runOptions
	flag.StringVar(&o.dbPath, "db", "", "path to the database file (required)")
	flag.StringVar(&o.query, "query", "", "CQ¬ in rule syntax")
	flag.StringVar(&o.queryFile, "query-file", "", "file containing the query")
	flag.StringVar(&o.exo, "exo", "", "comma-separated exogenous relations (the set X of Theorem 4.3)")
	flag.StringVar(&o.fact, "fact", "", "single fact to analyze (default: all endogenous facts)")
	flag.StringVar(&o.mode, "mode", "shapley", "shapley | classify | relevance | mc | satcount | measures")
	flag.BoolVar(&o.all, "all", false, "print a ranked attribution table over all endogenous facts (batched engine)")
	flag.BoolVar(&o.explain, "explain", false, "with -mode shapley: print the prepared plan's DP-tree shape instead of values")
	flag.BoolVar(&o.trace, "trace", false, "with -mode shapley: print the phase-level span tree (preparation, worker batches, tree toggles) to stderr")
	flag.BoolVar(&o.jsonOut, "json", false, "with -mode shapley: emit JSON in the server's result schema")
	flag.IntVar(&o.workers, "workers", 0, "worker-pool size for the batched engine (0 = GOMAXPROCS)")
	flag.BoolVar(&o.brute, "brute-force", false, "allow exponential brute force on intractable queries")
	flag.Float64Var(&o.eps, "eps", 0.1, "additive error for -mode mc")
	flag.Float64Var(&o.delta, "delta", 0.05, "failure probability for -mode mc")
	flag.Int64Var(&o.seed, "seed", 1, "random seed for -mode mc")
	flag.Parse()
	// Ctrl-C aborts an in-flight batch cleanly: the context threads
	// through Engine.Prepare and Plan.ShapleyAll down to the worker pool.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "shapley:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, w io.Writer, o runOptions) error {
	if o.dbPath == "" {
		return fmt.Errorf("-db is required")
	}
	raw, err := os.ReadFile(o.dbPath)
	if err != nil {
		return err
	}
	d, err := repro.ParseDatabase(string(raw))
	if err != nil {
		return err
	}
	queryStr := o.query
	if o.queryFile != "" {
		qraw, err := os.ReadFile(o.queryFile)
		if err != nil {
			return err
		}
		queryStr = strings.TrimSpace(string(qraw))
	}
	if queryStr == "" {
		return fmt.Errorf("-query or -query-file is required")
	}
	q, err := repro.ParseQuery(queryStr)
	if err != nil {
		return err
	}
	exo := map[string]bool{}
	if o.exo != "" {
		for _, r := range strings.Split(o.exo, ",") {
			exo[strings.TrimSpace(r)] = true
		}
	}
	if o.all && o.mode != "shapley" {
		return fmt.Errorf("-all applies only to -mode shapley, not %q", o.mode)
	}
	if o.jsonOut && o.mode != "shapley" {
		return fmt.Errorf("-json applies only to -mode shapley, not %q", o.mode)
	}
	if o.explain && o.mode != "shapley" {
		return fmt.Errorf("-explain applies only to -mode shapley, not %q", o.mode)
	}
	if o.trace && o.mode != "shapley" {
		return fmt.Errorf("-trace applies only to -mode shapley, not %q", o.mode)
	}
	if o.all && o.fact != "" {
		return fmt.Errorf("-all ranks every endogenous fact; drop -fact")
	}
	facts := d.EndoFacts()
	if o.fact != "" {
		f, err := repro.ParseFact(o.fact)
		if err != nil {
			return err
		}
		facts = []repro.Fact{f}
	}

	switch o.mode {
	case "classify":
		c := repro.Classify(q, exo)
		fmt.Fprintf(w, "query:                 %s\n", q)
		fmt.Fprintf(w, "self-join-free:        %v\n", c.SelfJoinFree)
		fmt.Fprintf(w, "hierarchical:          %v\n", c.Hierarchical)
		fmt.Fprintf(w, "polarity consistent:   %v\n", c.PolarityConsistent)
		fmt.Fprintf(w, "non-hierarchical path: %v\n", c.HasNonHierPath)
		if c.PathWitness != nil {
			fmt.Fprintf(w, "  witness: %s→%s via %v\n", c.PathWitness.X, c.PathWitness.Y, c.PathWitness.Path)
		}
		if c.Tractable {
			fmt.Fprintln(w, "verdict: exact Shapley computation is polynomial (Theorems 3.1/4.3)")
		} else {
			fmt.Fprintln(w, "verdict: exact Shapley computation is FP#P-complete (Theorems 3.1/4.3)")
		}
		return nil

	case "shapley":
		// The Engine/Plan API: prepared once (validation, classification,
		// ExoShap, shared CntSat tables), then any number of single-fact or
		// all-facts queries, cancellable via the signal context.
		if o.trace {
			rec := obs.NewRecorder(obs.NewTraceID(), "shapley")
			ctx = obs.WithRecorder(ctx, rec)
			defer func() { obs.WriteText(os.Stderr, rec.Finish()) }()
		}
		eng := repro.NewEngine(
			repro.WithExoRelations(exoList(exo)...),
			repro.WithBruteForce(o.brute),
			repro.WithWorkers(o.workers),
		)
		plan, err := eng.Prepare(ctx, d, q)
		if err != nil {
			return err
		}
		if o.explain {
			printExplain(w, queryStr, plan)
			return nil
		}
		if o.fact != "" {
			f := facts[0]
			v, err := plan.Shapley(ctx, f)
			if err != nil {
				return fmt.Errorf("%s: %w", f, err)
			}
			if o.jsonOut {
				return printJSON(w, server.EncodeValue(v))
			}
			fmt.Fprintf(w, "%-30s %s [%s]\n", f.Key(), v.Value.RatString(), v.Method)
			return nil
		}
		vals, err := plan.ShapleyAll(ctx, repro.BatchOptions{Workers: o.workers})
		if err != nil {
			return err
		}
		if o.jsonOut {
			// The same schema the server's /shapley endpoint emits: ranked
			// with -all (the attribution-table order), database order
			// otherwise.
			if o.all {
				return printJSON(w, map[string]any{"values": server.RankValues(vals)})
			}
			return printJSON(w, map[string]any{"values": server.EncodeValues(vals)})
		}
		if o.all {
			printRanked(w, vals)
			return nil
		}
		for _, v := range vals {
			fmt.Fprintf(w, "%-30s %s [%s]\n", v.Fact.Key(), v.Value.RatString(), v.Method)
		}
		return nil

	case "relevance":
		for _, f := range facts {
			var rel bool
			var err error
			if q.IsPolarityConsistent() {
				rel, err = repro.IsRelevant(d, q, f)
			} else if o.brute {
				rel, err = repro.IsRelevantBrute(d, q, f)
			} else {
				return fmt.Errorf("%s is not polarity consistent; pass -brute-force for the exponential check", q.Name())
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-30s relevant=%v\n", f.Key(), rel)
		}
		return nil

	case "mc":
		rng := rand.New(rand.NewSource(o.seed))
		for _, f := range facts {
			res, err := repro.MonteCarloShapley(d, q, f, o.eps, o.delta, rng)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-30s %+.5f (n=%d, ±%.3g with prob ≥ %.3g)\n", f.Key(), res.Estimate, res.Samples, o.eps, 1-o.delta)
		}
		return nil

	case "satcount":
		sat, err := repro.SatCountVector(d, q)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "k  |Sat(D,q,k)|")
		for k, c := range sat {
			fmt.Fprintf(w, "%-3d%s\n", k, c)
		}
		return nil

	case "measures":
		solver := &repro.Solver{ExoRelations: exo, AllowBruteForce: o.brute}
		fmt.Fprintf(w, "%-30s %12s %15s %15s\n", "fact", "Shapley", "causal effect", "responsibility")
		for _, f := range facts {
			sv, err := solver.Shapley(d, q, f)
			if err != nil {
				return fmt.Errorf("%s: %w", f, err)
			}
			ce, err := repro.CausalEffect(d, q, f)
			if err != nil {
				return err
			}
			rho, err := repro.Responsibility(d, q, f)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-30s %12s %15s %15s\n", f.Key(), sv.Value.RatString(), ce.RatString(), rho.RatString())
		}
		return nil
	}
	return fmt.Errorf("unknown mode %q", o.mode)
}

// exoList flattens the -exo set for the engine option, sorted so the
// engine sees the declarations in a stable order.
func exoList(exo map[string]bool) []string {
	out := make([]string, 0, len(exo))
	for r := range exo {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// printExplain renders the prepared plan's DP-tree shape: node counts by
// kind, depth, and the memo traffic of the preparation (on a fresh prepare
// every node is a miss; after Plan.Apply the hit ratio shows how much of
// the tree survived the delta).
func printExplain(w io.Writer, queryStr string, plan *repro.Plan) {
	ts := plan.TreeStats()
	fmt.Fprintf(w, "query:       %s\n", queryStr)
	fmt.Fprintf(w, "method:      %s\n", plan.Method())
	fmt.Fprintf(w, "version:     %d\n", plan.Version())
	fmt.Fprintf(w, "endogenous:  %d facts\n", plan.NumFacts())
	fmt.Fprintf(w, "tree nodes:  %d (%d bucket, %d product, %d ground, %d union)\n",
		ts.Nodes, ts.BucketNodes, ts.ProductNodes, ts.GroundNodes, ts.UnionNodes)
	fmt.Fprintf(w, "tree depth:  %d\n", ts.Depth)
	fmt.Fprintf(w, "numeric:     %d u64, %d u128, %d big nodes\n",
		ts.U64Nodes, ts.U128Nodes, ts.BigNodes)
	reuse := 0.0
	if ts.MemoHits+ts.MemoMisses > 0 {
		reuse = 100 * float64(ts.MemoHits) / float64(ts.MemoHits+ts.MemoMisses)
	}
	fmt.Fprintf(w, "memo:        %d hits, %d misses (%.1f%% reuse), %d live nodes\n",
		ts.MemoHits, ts.MemoMisses, reuse, ts.MemoEntries)
}

// printJSON writes v as indented JSON (the schema shared with shapleyd).
func printJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// printRanked renders the batch output as an attribution table, most
// influential facts first. The ordering and rank assignment come from
// server.RankValues, so the table, the CLI's -json output and the server's
// rank=true responses can never disagree.
func printRanked(w io.Writer, vals []*repro.ShapleyValue) {
	fmt.Fprintf(w, "%4s  %-30s %15s %12s  %s\n", "rank", "fact", "Shapley", "decimal", "method")
	for _, v := range server.RankValues(vals) {
		fmt.Fprintf(w, "%4d  %-30s %15s %+12.6f  [%s]\n", v.Rank, v.Fact, v.Shapley, v.Decimal, v.Method)
	}
}
