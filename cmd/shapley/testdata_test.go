package main

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/paperex"
)

// TestMain regenerates the university fixture from the authoritative copy in
// internal/paperex before any test runs, so the tests can never fail on a
// missing or stale testdata file (the original seed-repo failure mode).
func TestMain(m *testing.M) {
	if err := paperex.WriteUniversityDB(dbFile); err != nil {
		fmt.Fprintln(os.Stderr, "regenerating", dbFile+":", err)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// TestFixtureMatchesPaperex pins the on-disk fixture to the Figure 1 text.
func TestFixtureMatchesPaperex(t *testing.T) {
	raw, err := os.ReadFile(dbFile)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != paperex.UniversityDBText {
		t.Errorf("%s drifted from paperex.UniversityDBText; delete it and rerun the tests to regenerate", dbFile)
	}
}
