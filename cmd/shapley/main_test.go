package main

import (
	"bytes"
	"strings"
	"testing"
)

const dbFile = "testdata/university.db"

func TestRunShapleyMode(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, dbFile, "q1() :- Stud(x), !TA(x), Reg(x, y)", "", "", "", "shapley", false, 0.1, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TA(Adam)", "-3/28", "13/42", "[hierarchical]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSingleFact(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, dbFile, "q1() :- Stud(x), !TA(x), Reg(x, y)", "", "", "TA(Ben)", "shapley", false, 0.1, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "-2/35") || strings.Contains(out, "TA(Adam)") {
		t.Errorf("single-fact output wrong:\n%s", out)
	}
}

func TestRunClassifyMode(t *testing.T) {
	var buf bytes.Buffer
	q2 := "q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)"
	if err := run(&buf, dbFile, q2, "", "", "", "classify", false, 0.1, 0.05, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FP#P-complete") {
		t.Errorf("q2 without declarations must classify hard:\n%s", buf.String())
	}
	buf.Reset()
	if err := run(&buf, dbFile, q2, "", "Stud,Course", "", "classify", false, 0.1, 0.05, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "polynomial") {
		t.Errorf("q2 with X={Stud,Course} must classify tractable:\n%s", buf.String())
	}
}

func TestRunExoShapMode(t *testing.T) {
	var buf bytes.Buffer
	q2 := "q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)"
	if err := run(&buf, dbFile, q2, "", "Stud,Course", "TA(Adam)", "shapley", false, 0.1, 0.05, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[exoshap]") {
		t.Errorf("expected the ExoShap method:\n%s", buf.String())
	}
}

func TestRunRelevanceMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, dbFile, "q1() :- Stud(x), !TA(x), Reg(x, y)", "", "", "TA(David)", "relevance", false, 0.1, 0.05, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "relevant=false") {
		t.Errorf("TA(David) should be irrelevant:\n%s", buf.String())
	}
}

func TestRunMCMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, dbFile, "q1() :- Stud(x), !TA(x), Reg(x, y)", "", "", "TA(Adam)", "mc", false, 0.3, 0.2, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "n=") {
		t.Errorf("mc output missing sample count:\n%s", buf.String())
	}
}

func TestRunSatCountMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, dbFile, "q1() :- Stud(x), !TA(x), Reg(x, y)", "", "", "", "satcount", false, 0.1, 0.05, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "|Sat(D,q,k)|") {
		t.Errorf("satcount output wrong:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	cases := []struct {
		name string
		call func() error
	}{
		{"missing db", func() error {
			return run(&buf, "", "q() :- R(x)", "", "", "", "shapley", false, 0.1, 0.05, 1)
		}},
		{"missing query", func() error {
			return run(&buf, dbFile, "", "", "", "", "shapley", false, 0.1, 0.05, 1)
		}},
		{"bad query", func() error {
			return run(&buf, dbFile, "nonsense", "", "", "", "shapley", false, 0.1, 0.05, 1)
		}},
		{"bad mode", func() error {
			return run(&buf, dbFile, "q() :- Stud(x)", "", "", "", "zzz", false, 0.1, 0.05, 1)
		}},
		{"bad fact", func() error {
			return run(&buf, dbFile, "q() :- Stud(x)", "", "", "garbage", "shapley", false, 0.1, 0.05, 1)
		}},
		{"intractable without fallback", func() error {
			return run(&buf, dbFile, "q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)", "", "", "", "shapley", false, 0.1, 0.05, 1)
		}},
		{"relevance needs polarity consistency", func() error {
			return run(&buf, dbFile, "q() :- Reg(x, y), !Reg(y, x)", "", "", "", "relevance", false, 0.1, 0.05, 1)
		}},
		{"missing db file", func() error {
			return run(&buf, "testdata/nope.db", "q() :- Stud(x)", "", "", "", "shapley", false, 0.1, 0.05, 1)
		}},
	}
	for _, c := range cases {
		if err := c.call(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRunBruteForceFallback(t *testing.T) {
	var buf bytes.Buffer
	q2 := "q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)"
	if err := run(&buf, dbFile, q2, "", "", "TA(Adam)", "shapley", true, 0.1, 0.05, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[brute-force]") {
		t.Errorf("expected brute-force method:\n%s", buf.String())
	}
}
