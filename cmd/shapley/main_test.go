package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

const dbFile = "testdata/university.db"

// baseOpts returns the default-flag equivalent of the command line.
func baseOpts(query string) runOptions {
	return runOptions{dbPath: dbFile, query: query, mode: "shapley", eps: 0.1, delta: 0.05, seed: 1}
}

const q1Src = "q1() :- Stud(x), !TA(x), Reg(x, y)"
const q2Src = "q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)"

func TestRunShapleyMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, baseOpts(q1Src)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TA(Adam)", "-3/28", "13/42", "[hierarchical]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSingleFact(t *testing.T) {
	var buf bytes.Buffer
	o := baseOpts(q1Src)
	o.fact = "TA(Ben)"
	if err := run(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "-2/35") || strings.Contains(out, "TA(Adam)") {
		t.Errorf("single-fact output wrong:\n%s", out)
	}
}

func TestRunAllRankedTable(t *testing.T) {
	for _, workers := range []int{0, 1, 4} {
		var buf bytes.Buffer
		o := baseOpts(q1Src)
		o.all = true
		o.workers = workers
		if err := run(context.Background(), &buf, o); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) != 9 { // header + 8 endogenous facts
			t.Fatalf("workers=%d: want 9 lines, got %d:\n%s", workers, len(lines), buf.String())
		}
		if !strings.Contains(lines[0], "rank") || !strings.Contains(lines[0], "method") {
			t.Errorf("workers=%d: missing table header:\n%s", workers, buf.String())
		}
		// Example 2.3 ranking: the two 13/42 Reg(Caroline, ·) facts lead,
		// TA(Adam) = −3/28 is the most negative attribution.
		if !strings.Contains(lines[1], "13/42") {
			t.Errorf("workers=%d: rank 1 should be 13/42:\n%s", workers, buf.String())
		}
		if !strings.Contains(lines[len(lines)-1], "TA(Adam)") || !strings.Contains(lines[len(lines)-1], "-3/28") {
			t.Errorf("workers=%d: last rank should be TA(Adam) = -3/28:\n%s", workers, buf.String())
		}
	}
}

// TestRunJSONOutput: -json must emit the server's result schema — ranked
// with -all, database order otherwise, and a bare object for single facts.
func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	o := baseOpts(q1Src)
	o.all = true
	o.jsonOut = true
	if err := run(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	var ranked struct {
		Values []struct {
			Rank    int     `json:"rank"`
			Fact    string  `json:"fact"`
			Shapley string  `json:"shapley"`
			Decimal float64 `json:"decimal"`
			Method  string  `json:"method"`
		} `json:"values"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ranked); err != nil {
		t.Fatalf("decoding -all -json output: %v\n%s", err, buf.String())
	}
	if len(ranked.Values) != 8 {
		t.Fatalf("want 8 values, got %d", len(ranked.Values))
	}
	if ranked.Values[0].Rank != 1 || ranked.Values[0].Shapley != "13/42" {
		t.Fatalf("top-ranked value = %+v, want rank 1 at 13/42", ranked.Values[0])
	}
	for _, v := range ranked.Values {
		if v.Method != "hierarchical" {
			t.Fatalf("method = %q", v.Method)
		}
	}

	buf.Reset()
	o = baseOpts(q1Src)
	o.fact = "TA(Adam)"
	o.jsonOut = true
	if err := run(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	var single struct {
		Fact    string `json:"fact"`
		Shapley string `json:"shapley"`
	}
	if err := json.Unmarshal(buf.Bytes(), &single); err != nil {
		t.Fatalf("decoding single-fact -json output: %v\n%s", err, buf.String())
	}
	if single.Fact != "TA(Adam)" || single.Shapley != "-3/28" {
		t.Fatalf("single = %+v", single)
	}

	// -json is scoped to -mode shapley.
	o = baseOpts(q1Src)
	o.mode = "classify"
	o.jsonOut = true
	if err := run(context.Background(), &buf, o); err == nil {
		t.Fatal("-json with -mode classify should error")
	}
}

func TestRunClassifyMode(t *testing.T) {
	var buf bytes.Buffer
	o := baseOpts(q2Src)
	o.mode = "classify"
	if err := run(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FP#P-complete") {
		t.Errorf("q2 without declarations must classify hard:\n%s", buf.String())
	}
	buf.Reset()
	o.exo = "Stud,Course"
	if err := run(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "polynomial") {
		t.Errorf("q2 with X={Stud,Course} must classify tractable:\n%s", buf.String())
	}
}

func TestRunExoShapMode(t *testing.T) {
	var buf bytes.Buffer
	o := baseOpts(q2Src)
	o.exo = "Stud,Course"
	o.fact = "TA(Adam)"
	if err := run(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[exoshap]") {
		t.Errorf("expected the ExoShap method:\n%s", buf.String())
	}
}

func TestRunExoShapAllFacts(t *testing.T) {
	// The whole-database ExoShap workload runs the transformation once for
	// the batch instead of once per fact.
	var buf bytes.Buffer
	o := baseOpts(q2Src)
	o.exo = "Stud,Course"
	o.workers = 4
	if err := run(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "[exoshap]") != 8 {
		t.Errorf("expected 8 ExoShap values:\n%s", out)
	}
}

func TestRunRelevanceMode(t *testing.T) {
	var buf bytes.Buffer
	o := baseOpts(q1Src)
	o.mode = "relevance"
	o.fact = "TA(David)"
	if err := run(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "relevant=false") {
		t.Errorf("TA(David) should be irrelevant:\n%s", buf.String())
	}
}

func TestRunMCMode(t *testing.T) {
	var buf bytes.Buffer
	o := baseOpts(q1Src)
	o.mode = "mc"
	o.fact = "TA(Adam)"
	o.eps, o.delta = 0.3, 0.2
	if err := run(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "n=") {
		t.Errorf("mc output missing sample count:\n%s", buf.String())
	}
}

func TestRunSatCountMode(t *testing.T) {
	var buf bytes.Buffer
	o := baseOpts(q1Src)
	o.mode = "satcount"
	if err := run(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "|Sat(D,q,k)|") {
		t.Errorf("satcount output wrong:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	with := func(mutate func(*runOptions)) runOptions {
		o := baseOpts("q() :- Stud(x)")
		mutate(&o)
		return o
	}
	cases := []struct {
		name string
		opts runOptions
	}{
		{"missing db", with(func(o *runOptions) { o.dbPath = "" })},
		{"missing query", with(func(o *runOptions) { o.query = "" })},
		{"bad query", with(func(o *runOptions) { o.query = "nonsense" })},
		{"bad mode", with(func(o *runOptions) { o.mode = "zzz" })},
		{"bad fact", with(func(o *runOptions) { o.fact = "garbage" })},
		{"intractable without fallback", with(func(o *runOptions) { o.query = q2Src })},
		{"intractable ranked without fallback", with(func(o *runOptions) { o.query = q2Src; o.all = true; o.workers = 4 })},
		{"-all conflicts with -fact", with(func(o *runOptions) { o.all = true; o.fact = "TA(Adam)" })},
		{"-all conflicts with non-shapley mode", with(func(o *runOptions) { o.all = true; o.mode = "classify" })},
		{"relevance needs polarity consistency", with(func(o *runOptions) { o.query = "q() :- Reg(x, y), !Reg(y, x)"; o.mode = "relevance" })},
		{"missing db file", with(func(o *runOptions) { o.dbPath = "testdata/nope.db" })},
	}
	for _, c := range cases {
		if err := run(context.Background(), &buf, c.opts); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRunBruteForceFallback(t *testing.T) {
	var buf bytes.Buffer
	o := baseOpts(q2Src)
	o.fact = "TA(Adam)"
	o.brute = true
	if err := run(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[brute-force]") {
		t.Errorf("expected brute-force method:\n%s", buf.String())
	}
}

// TestRunExplainGolden pins the -explain rendering of the DP-tree shape
// for the university workload: node counts by kind, depth and memo
// traffic (a fresh preparation reuses nothing, so every node is a miss).
func TestRunExplainGolden(t *testing.T) {
	var buf bytes.Buffer
	o := baseOpts(q1Src)
	o.explain = true
	if err := run(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	want := `query:       q1() :- Stud(x), !TA(x), Reg(x, y)
method:      hierarchical
version:     1
endogenous:  8 facts
tree nodes:  22 (5 bucket, 4 product, 13 ground, 0 union)
tree depth:  4
numeric:     22 u64, 0 u128, 0 big nodes
memo:        0 hits, 22 misses (0.0% reuse), 22 live nodes
`
	if buf.String() != want {
		t.Errorf("explain output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestRunExplainWrongMode: -explain is a shapley-mode flag.
func TestRunExplainWrongMode(t *testing.T) {
	var buf bytes.Buffer
	o := baseOpts(q1Src)
	o.explain = true
	o.mode = "classify"
	if err := run(context.Background(), &buf, o); err == nil {
		t.Fatal("expected error for -explain with -mode classify")
	}
}
