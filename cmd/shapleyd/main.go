// Command shapleyd runs the Shapley attribution server: a long-lived HTTP
// daemon serving exact and approximate Shapley values, classifications and
// relevance over registered databases, with a cross-query LRU plan cache
// so repeated queries skip validation, classification, ExoShap and the
// shared CntSat tables.
//
// Usage:
//
//	shapleyd -addr :8080 -workers 4 -cache-size 128
//
// Quickstart (see docs/server.md for the full walkthrough):
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/databases \
//	    -d '{"id":"uni","text":"exo Stud(Ann)\nendo TA(Ann)\nendo Reg(Ann, OS)"}'
//	curl -s -X POST localhost:8080/v1/databases/uni/shapley \
//	    -d '{"query":"q() :- Stud(x), !TA(x), Reg(x, y)","mode":"all"}'
//
// Cluster mode (see docs/cluster.md): the same binary also runs as the
// cluster router in front of a worker fleet,
//
//	shapleyd -addr :8081 &
//	shapleyd -addr :8082 &
//	shapleyd -mode=router -addr :8080 \
//	    -shard-workers 'w1=http://localhost:8081,w2=http://localhost:8082' \
//	    -replication 2
//
// which shards database ids onto the workers by consistent hashing,
// replicates every database onto -replication workers, coalesces
// concurrent identical single-fact requests and PATCH bursts within
// -coalesce-window, scatters mode=all batches across replicas, and fails
// over automatically when a worker dies (recovered workers are re-warmed
// from a peer's plan snapshot). -shards points at a JSON shard config
// file instead of the inline list.
//
// Observability (see docs/observability.md):
//
//   - Logs are structured JSON on stderr (log/slog); -log-level selects
//     the floor (debug enables per-request access logs). Requests slower
//     than -slow-query are logged at warn and counted on /metrics.
//   - Every response carries an X-Trace-Id header (inbound X-Trace-Id is
//     honored); appending ?trace=1 to a request echoes the request's span
//     tree — plan lookup, preparation, per-worker batch work, tree
//     toggles — in the response body. Through the router, the trace id
//     propagates to the worker and the worker's spans appear as a remote
//     subtree under the router's worker.call span.
//   - -pprof-addr serves net/http/pprof on a separate listener, kept off
//     the public mux so profiling is never exposed with the API.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: /readyz flips to
// 503 (so cluster routers and load balancers stop sending new work — the
// liveness probe /healthz stays 200), then in-flight requests drain for
// up to -drain; when the drain window expires, the base request context
// is cancelled, which aborts in-flight mode=all batches (the compute
// stack is context-aware end to end) before the listener is forcibly
// closed.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

// parseLevel maps the -log-level flag to a slog level.
func parseLevel(s string) (slog.Level, bool) {
	switch s {
	case "debug":
		return slog.LevelDebug, true
	case "info":
		return slog.LevelInfo, true
	case "warn":
		return slog.LevelWarn, true
	case "error":
		return slog.LevelError, true
	}
	return 0, false
}

// pprofMux builds the profiling handler explicitly (instead of importing
// net/http/pprof for its DefaultServeMux side effect) so the profile
// endpoints exist only on the dedicated -pprof-addr listener.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		mode      = flag.String("mode", "worker", "process role: worker (serve databases) or router (shard requests across a worker fleet)")
		workers   = flag.Int("workers", 0, "default worker-pool size for mode=all requests (0 = GOMAXPROCS)")
		prepPar   = flag.Int("prepare-parallelism", 0, "DP-tree builder concurrency for plan preparation and PATCH rebuilds (0/1 = sequential, negative = GOMAXPROCS)")
		spawnCost = flag.Int("prepare-spawn-cost", 0, "cost threshold below which the parallel DP-tree builder keeps a subtree inline instead of spawning it (0 = calibrated default; unit ≈ one u64-representation fact)")
		cacheSize = flag.Int("cache-size", server.DefaultCacheSize, "plan-cache capacity in entries")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn or error (debug enables per-request access logs)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		slowQuery = flag.Duration("slow-query", server.DefaultSlowRequestThreshold, "log requests at least this slow at warn level and count them on /metrics (negative = disabled)")

		// Router-mode flags (ignored as a worker).
		shardFile    = flag.String("shards", "", "router: JSON shard config file ({\"workers\":[{\"name\":...,\"url\":...}],\"replication\":N})")
		shardWorkers = flag.String("shard-workers", "", "router: inline worker fleet as name=url,name=url (alternative to -shards)")
		replication  = flag.Int("replication", 0, "router: replicas per database id (0 = config value or default)")
		virtualNodes = flag.Int("virtual-nodes", 0, "router: hash-ring points per worker (0 = config value or default)")
		coalesce     = flag.Duration("coalesce-window", cluster.DefaultCoalesceWindow, "router: merge window for concurrent identical single-fact requests and PATCH bursts (negative = disabled)")
		probeEvery   = flag.Duration("probe-interval", cluster.DefaultProbeInterval, "router: worker health-probe interval (negative = disabled)")
		probeTimeout = flag.Duration("probe-timeout", cluster.DefaultProbeTimeout, "router: per-probe timeout")
	)
	flag.Parse()

	level, ok := parseLevel(*logLevel)
	if !ok {
		slog.Error("invalid -log-level", "value", *logLevel, "want", "debug|info|warn|error")
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	// Build the role's handler plus the hooks the drain sequence needs:
	// flip readiness first so routers stop routing here, then drain.
	var (
		handler     http.Handler
		setDraining func(bool)
		closeRole   func()
	)
	switch *mode {
	case "worker":
		srv := server.New(server.Options{
			Workers:              *workers,
			PrepareParallelism:   *prepPar,
			PrepareSpawnCost:     *spawnCost,
			CacheSize:            *cacheSize,
			Logger:               logger,
			SlowRequestThreshold: *slowQuery,
		})
		handler, setDraining, closeRole = srv, srv.SetDraining, func() {}
	case "router":
		var cfg *cluster.Config
		var err error
		switch {
		case *shardFile != "" && *shardWorkers != "":
			logger.Error("use -shards or -shard-workers, not both")
			os.Exit(2)
		case *shardFile != "":
			cfg, err = cluster.LoadConfig(*shardFile)
		case *shardWorkers != "":
			var ws []cluster.Worker
			ws, err = cluster.ParseWorkerList(*shardWorkers)
			cfg = &cluster.Config{Workers: ws}
		default:
			logger.Error("router mode needs -shards or -shard-workers")
			os.Exit(2)
		}
		if err != nil {
			logger.Error("bad shard config", "error", err)
			os.Exit(2)
		}
		if *replication != 0 {
			cfg.Replication = *replication
		}
		if *virtualNodes != 0 {
			cfg.VirtualNodes = *virtualNodes
		}
		rt, err := cluster.NewRouter(cluster.RouterOptions{
			Config:         cfg,
			CoalesceWindow: *coalesce,
			ProbeInterval:  *probeEvery,
			ProbeTimeout:   *probeTimeout,
			Logger:         logger,
		})
		if err != nil {
			logger.Error("router init failed", "error", err)
			os.Exit(2)
		}
		rt.Start()
		handler, setDraining, closeRole = rt, rt.SetDraining, rt.Close
		logger.Info("router fleet",
			"workers", len(cfg.Workers),
			"replication", cfg.Replication,
			"virtual_nodes", cfg.VirtualNodes,
			"coalesce_window", coalesce.String(),
		)
	default:
		slog.Error("invalid -mode", "value", *mode, "want", "worker|router")
		os.Exit(2)
	}
	defer closeRole()

	// Every request context derives from baseCtx, so cancelling it aborts
	// all in-flight Shapley batches at once when the drain window expires.
	baseCtx, cancelRequests := context.WithCancel(context.Background())
	defer cancelRequests()
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}

	if *pprofAddr != "" {
		pprofSrv := &http.Server{
			Addr:              *pprofAddr,
			Handler:           pprofMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server failed", "error", err)
			}
		}()
		defer pprofSrv.Close()
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening",
			"addr", *addr,
			"mode", *mode,
			"workers", *workers,
			"cache_size", *cacheSize,
			"log_level", *logLevel,
			"slow_query", slowQuery.String(),
		)
		errCh <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "error", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logger.Info("shutting down", "drain", drain.String())
		setDraining(true)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			// Drain expired: cancel every in-flight request context so
			// running batches abort, then close the remaining connections.
			logger.Warn("drain expired, aborting in-flight batches", "error", err)
			cancelRequests()
			if err := httpSrv.Close(); err != nil {
				logger.Error("forced close failed", "error", err)
			}
		}
	}
	logger.Info("bye")
}
