// Command shapleyd runs the Shapley attribution server: a long-lived HTTP
// daemon serving exact and approximate Shapley values, classifications and
// relevance over registered databases, with a cross-query LRU plan cache
// so repeated queries skip validation, classification, ExoShap and the
// shared CntSat tables.
//
// Usage:
//
//	shapleyd -addr :8080 -workers 4 -cache-size 128
//
// Quickstart (see docs/server.md for the full walkthrough):
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/databases \
//	    -d '{"id":"uni","text":"exo Stud(Ann)\nendo TA(Ann)\nendo Reg(Ann, OS)"}'
//	curl -s -X POST localhost:8080/v1/databases/uni/shapley \
//	    -d '{"query":"q() :- Stud(x), !TA(x), Reg(x, y)","mode":"all"}'
//
// Observability (see docs/observability.md):
//
//   - Logs are structured JSON on stderr (log/slog); -log-level selects
//     the floor (debug enables per-request access logs). Requests slower
//     than -slow-query are logged at warn and counted on /metrics.
//   - Every response carries an X-Trace-Id header (inbound X-Trace-Id is
//     honored); appending ?trace=1 to a request echoes the request's span
//     tree — plan lookup, preparation, per-worker batch work, tree
//     toggles — in the response body.
//   - -pprof-addr serves net/http/pprof on a separate listener, kept off
//     the public mux so profiling is never exposed with the API.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to -drain; when the drain window expires, the base
// request context is cancelled, which aborts in-flight mode=all batches
// (the compute stack is context-aware end to end) before the listener is
// forcibly closed.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

// parseLevel maps the -log-level flag to a slog level.
func parseLevel(s string) (slog.Level, bool) {
	switch s {
	case "debug":
		return slog.LevelDebug, true
	case "info":
		return slog.LevelInfo, true
	case "warn":
		return slog.LevelWarn, true
	case "error":
		return slog.LevelError, true
	}
	return 0, false
}

// pprofMux builds the profiling handler explicitly (instead of importing
// net/http/pprof for its DefaultServeMux side effect) so the profile
// endpoints exist only on the dedicated -pprof-addr listener.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "default worker-pool size for mode=all requests (0 = GOMAXPROCS)")
		cacheSize = flag.Int("cache-size", server.DefaultCacheSize, "plan-cache capacity in entries")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn or error (debug enables per-request access logs)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		slowQuery = flag.Duration("slow-query", server.DefaultSlowRequestThreshold, "log requests at least this slow at warn level and count them on /metrics (negative = disabled)")
	)
	flag.Parse()

	level, ok := parseLevel(*logLevel)
	if !ok {
		slog.Error("invalid -log-level", "value", *logLevel, "want", "debug|info|warn|error")
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	srv := server.New(server.Options{
		Workers:              *workers,
		CacheSize:            *cacheSize,
		Logger:               logger,
		SlowRequestThreshold: *slowQuery,
	})
	// Every request context derives from baseCtx, so cancelling it aborts
	// all in-flight Shapley batches at once when the drain window expires.
	baseCtx, cancelRequests := context.WithCancel(context.Background())
	defer cancelRequests()
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}

	if *pprofAddr != "" {
		pprofSrv := &http.Server{
			Addr:              *pprofAddr,
			Handler:           pprofMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server failed", "error", err)
			}
		}()
		defer pprofSrv.Close()
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening",
			"addr", *addr,
			"workers", *workers,
			"cache_size", *cacheSize,
			"log_level", *logLevel,
			"slow_query", slowQuery.String(),
		)
		errCh <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "error", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logger.Info("shutting down", "drain", drain.String())
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			// Drain expired: cancel every in-flight request context so
			// running batches abort, then close the remaining connections.
			logger.Warn("drain expired, aborting in-flight batches", "error", err)
			cancelRequests()
			if err := httpSrv.Close(); err != nil {
				logger.Error("forced close failed", "error", err)
			}
		}
	}
	logger.Info("bye")
}
