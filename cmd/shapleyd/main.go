// Command shapleyd runs the Shapley attribution server: a long-lived HTTP
// daemon serving exact and approximate Shapley values, classifications and
// relevance over registered databases, with a cross-query LRU plan cache
// so repeated queries skip validation, classification, ExoShap and the
// shared CntSat tables.
//
// Usage:
//
//	shapleyd -addr :8080 -workers 4 -cache-size 128
//
// Quickstart (see docs/server.md for the full walkthrough):
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/databases \
//	    -d '{"id":"uni","text":"exo Stud(Ann)\nendo TA(Ann)\nendo Reg(Ann, OS)"}'
//	curl -s -X POST localhost:8080/v1/databases/uni/shapley \
//	    -d '{"query":"q() :- Stud(x), !TA(x), Reg(x, y)","mode":"all"}'
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to -drain; when the drain window expires, the base
// request context is cancelled, which aborts in-flight mode=all batches
// (the compute stack is context-aware end to end) before the listener is
// forcibly closed.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "default worker-pool size for mode=all requests (0 = GOMAXPROCS)")
		cacheSize = flag.Int("cache-size", server.DefaultCacheSize, "plan-cache capacity in entries")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	srv := server.New(server.Options{Workers: *workers, CacheSize: *cacheSize})
	// Every request context derives from baseCtx, so cancelling it aborts
	// all in-flight Shapley batches at once when the drain window expires.
	baseCtx, cancelRequests := context.WithCancel(context.Background())
	defer cancelRequests()
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("shapleyd: listening on %s (workers=%d cache-size=%d)", *addr, *workers, *cacheSize)
		errCh <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("shapleyd: %v", err)
		}
	case <-ctx.Done():
		log.Printf("shapleyd: shutting down (draining up to %s)", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			// Drain expired: cancel every in-flight request context so
			// running batches abort, then close the remaining connections.
			log.Printf("shapleyd: drain expired, aborting in-flight batches: %v", err)
			cancelRequests()
			if err := httpSrv.Close(); err != nil {
				log.Printf("shapleyd: forced close: %v", err)
			}
		}
	}
	log.Printf("shapleyd: bye")
}
