package repro

import (
	"math/big"
	"math/rand"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/measures"
	"repro/internal/probdb"
	"repro/internal/query"
	"repro/internal/relevance"
)

// Re-exported core types. The internal packages hold the implementations;
// this facade is the supported public surface.
type (
	// Database is a set of facts partitioned into exogenous and endogenous.
	Database = db.Database
	// Fact is a ground atom R(c1, ..., ck).
	Fact = db.Fact
	// Const is a database constant.
	Const = db.Const
	// CQ is a conjunctive query with safe negation (CQ¬).
	CQ = query.CQ
	// UCQ is a union of CQ¬s.
	UCQ = query.UCQ
	// Atom is a possibly negated query atom.
	Atom = query.Atom
	// Term is a variable or constant in an atom.
	Term = query.Term
	// Binding maps query variables to constants.
	Binding = query.Binding
	// BooleanQuery is the common evaluation interface of CQ and UCQ.
	BooleanQuery = query.BooleanQuery
	// Solver computes Shapley values, dispatching on the dichotomies. Its
	// ShapleyAll method delegates to the batched engine (ShapleyAllBatch),
	// which validates once, classifies once, runs ExoShap once, and shares
	// the fact-independent CntSat tables across the whole batch.
	Solver = core.Solver
	// BatchOptions configures the batch engines (Plan.ShapleyAll,
	// Solver.ShapleyAllBatch): the worker-pool size and an in-order
	// streaming callback.
	BatchOptions = core.BatchOptions
	// Engine is the v2 compute entry point: an immutable policy bundle
	// (workers, brute force, exogenous relations, builder parallelism)
	// built with functional options (WithWorkers, WithBruteForce,
	// WithExoRelations, WithPrepareParallelism) whose Prepare/PrepareUCQ
	// return versioned Plans.
	Engine = core.Engine
	// EngineOption configures NewEngine.
	EngineOption = core.EngineOption
	// TreeStats summarizes the DP-tree IR behind a Plan (node counts by
	// kind, depth, memo traffic); see Plan.TreeStats.
	TreeStats = core.TreeStats
	// Plan is the versioned, incrementally maintainable compute handle:
	// Shapley/ShapleyAll accept a context.Context for cancellation, and
	// Apply evolves the plan under a Delta by recomputing only the DP
	// buckets the delta touches — bit-identical to a fresh Prepare over
	// the post-delta database.
	Plan = core.Plan
	// Delta is a batch of fact insertions and removals for Plan.Apply.
	Delta = db.Delta
	// Version is the monotone version number of a Plan (and of registered
	// databases on the serving layer).
	Version = db.Version
	// PreparedBatch is the v1 reusable handle over the fact-independent
	// parts of a Shapley computation, returned by Solver.PrepareAll /
	// Solver.PrepareAllUCQ.
	//
	// Deprecated: use Engine.Prepare / Engine.PrepareUCQ, whose Plan
	// additionally supports context cancellation and incremental
	// maintenance under deltas. PreparedBatch remains as a thin shim over
	// the same preparation path; see docs/api.md for the migration table.
	PreparedBatch = core.PreparedBatch
	// ShapleyValue is a computed value with its method.
	ShapleyValue = core.ShapleyValue
	// Classification locates a query in the paper's dichotomies.
	Classification = core.Classification
	// MCResult is a Monte-Carlo estimate.
	MCResult = core.MCResult
	// ExoShapStage is one step of the ExoShap transformation.
	ExoShapStage = core.ExoShapStage
	// ProbDatabase is a tuple-independent probabilistic database.
	ProbDatabase = probdb.ProbDatabase
	// NonHierarchicalPath witnesses the Theorem 4.3 hardness condition.
	NonHierarchicalPath = query.NonHierarchicalPath
	// Triplet is a non-hierarchical triplet of atoms.
	Triplet = query.Triplet
)

// Shapley computation methods.
const (
	MethodHierarchical = core.MethodHierarchical
	MethodExoShap      = core.MethodExoShap
	MethodBruteForce   = core.MethodBruteForce
)

// Errors surfaced by the solvers.
var (
	ErrNotSelfJoinFree       = core.ErrNotSelfJoinFree
	ErrNotHierarchical       = core.ErrNotHierarchical
	ErrIntractable           = core.ErrIntractable
	ErrNotEndogenous         = core.ErrNotEndogenous
	ErrExoViolated           = core.ErrExoViolated
	ErrNotPolarityConsistent = relevance.ErrNotPolarityConsistent
)

// NewEngine returns an Engine with the given options applied; see
// WithWorkers, WithBruteForce, WithExoRelations and
// WithPrepareParallelism.
func NewEngine(opts ...EngineOption) *Engine { return core.NewEngine(opts...) }

// WithWorkers sets the engine's default worker-pool size for
// Plan.ShapleyAll (0 = GOMAXPROCS).
func WithWorkers(n int) EngineOption { return core.WithWorkers(n) }

// WithBruteForce enables the exponential fallback for queries on the
// intractable side of the dichotomies.
func WithBruteForce(allow bool) EngineOption { return core.WithBruteForce(allow) }

// WithExoRelations declares schema-level exogenous relations (the set X of
// §4, widening tractability per Theorem 4.3).
func WithExoRelations(rels ...string) EngineOption { return core.WithExoRelations(rels...) }

// WithPrepareParallelism sets the DP-tree builder concurrency used by
// Prepare, PrepareUCQ, PrepareFrom and the spine rebuilds of Plan.Apply
// (0 or 1 = sequential, the default; negative = GOMAXPROCS). Every
// setting produces bit-identical plans — only wall-clock time changes.
func WithPrepareParallelism(n int) EngineOption { return core.WithPrepareParallelism(n) }

// NewDatabase returns an empty database.
func NewDatabase() *Database { return db.New() }

// NewFact builds a fact from a relation symbol and string constants.
func NewFact(rel string, args ...string) Fact { return db.F(rel, args...) }

// ParseDatabase reads the textual database format ("exo R(a)" / "endo S(b)"
// lines).
func ParseDatabase(text string) (*Database, error) { return db.Parse(text) }

// MustParseDatabase is ParseDatabase that panics on error.
func MustParseDatabase(text string) *Database { return db.MustParse(text) }

// ParseFact parses "R(c1, c2)".
func ParseFact(s string) (Fact, error) { return db.ParseFact(s) }

// ParseQuery reads a CQ¬ in rule syntax, e.g.
// "q() :- Stud(x), !TA(x), Reg(x, y)".
func ParseQuery(src string) (*CQ, error) { return query.Parse(src) }

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(src string) *CQ { return query.MustParse(src) }

// ParseUCQ reads a union of CQ¬s separated by '|' or newlines.
func ParseUCQ(src string) (*UCQ, error) { return query.ParseUCQ(src) }

// MustParseUCQ is ParseUCQ that panics on error.
func MustParseUCQ(src string) *UCQ { return query.MustParseUCQ(src) }

// Classify applies the dichotomies of Theorems 3.1 and 4.3 to q with the
// declared exogenous relations (nil for none).
func Classify(q *CQ, exoRelations map[string]bool) Classification {
	return core.Classify(q, exoRelations)
}

// BruteForceShapley computes Shapley(D, q, f) by subset enumeration — the
// definitional ground truth, exponential in the number of endogenous facts.
func BruteForceShapley(d *Database, q BooleanQuery, f Fact) (*big.Rat, error) {
	return core.BruteForceShapley(d, q, f)
}

// ShapleyHierarchical runs the polynomial-time exact algorithm for a
// hierarchical self-join-free CQ¬ (Theorem 3.1, positive side).
func ShapleyHierarchical(d *Database, q *CQ, f Fact) (*big.Rat, error) {
	return core.ShapleyHierarchical(d, q, f)
}

// SatCountVector computes |Sat(D, q, k)| for k = 0..|Dn| (Lemma 3.2).
func SatCountVector(d *Database, q *CQ) ([]*big.Int, error) {
	return core.SatCountVector(d, q)
}

// ExoShapTransform applies the Algorithm 1 preprocessing pipeline,
// returning the transformed instance, the hierarchical query, and the
// intermediate stages.
func ExoShapTransform(d *Database, q *CQ, exoRelations map[string]bool) (*Database, *CQ, []ExoShapStage, error) {
	return core.ExoShapTransform(d, q, exoRelations)
}

// MonteCarloShapley estimates the Shapley value within additive error ε
// with probability 1−δ (the §5.1 additive FPRAS).
func MonteCarloShapley(d *Database, q BooleanQuery, f Fact, eps, delta float64, rng *rand.Rand) (MCResult, error) {
	return core.MonteCarloShapley(d, q, f, eps, delta, rng)
}

// MonteCarloShapleyN estimates from a fixed number of sampled permutations.
func MonteCarloShapleyN(d *Database, q BooleanQuery, f Fact, samples int, rng *rand.Rand) (MCResult, error) {
	return core.MonteCarloShapleyN(d, q, f, samples, rng)
}

// HoeffdingSamples returns the sample count sufficient for an additive
// (ε, δ)-approximation.
func HoeffdingSamples(eps, delta float64) (int, error) {
	return core.HoeffdingSamples(eps, delta)
}

// IsRelevant decides relevance (Definition 5.2) for a polarity-consistent
// CQ¬ in polynomial time (Proposition 5.7; Algorithms 2 and 3). For such
// queries this coincides with Shapley(D, q, f) ≠ 0.
func IsRelevant(d *Database, q *CQ, f Fact) (bool, error) {
	return relevance.IsRelevant(d, q, f)
}

// IsPosRelevant decides positive relevance (Algorithm 2).
func IsPosRelevant(d *Database, q *CQ, f Fact) (bool, error) {
	return relevance.IsPosRelevant(d, q, f)
}

// IsNegRelevant decides negative relevance (Algorithm 3).
func IsNegRelevant(d *Database, q *CQ, f Fact) (bool, error) {
	return relevance.IsNegRelevant(d, q, f)
}

// IsRelevantUCQ decides relevance to a polarity-consistent UCQ¬ in
// polynomial time (§5.2).
func IsRelevantUCQ(d *Database, u *UCQ, f Fact) (bool, error) {
	return relevance.IsRelevantUCQ(d, u, f)
}

// IsRelevantBrute decides relevance for any Boolean query by subset
// enumeration (exponential; the validation oracle).
func IsRelevantBrute(d *Database, q BooleanQuery, f Fact) (bool, error) {
	return relevance.IsRelevantBrute(d, q, f)
}

// ShapleyNonZero decides Shapley(D, q, f) ≠ 0 in polynomial time for
// polarity-consistent CQ¬s.
func ShapleyNonZero(d *Database, q *CQ, f Fact) (bool, error) {
	return relevance.ShapleyNonZero(d, q, f)
}

// SatCountVectorUCQ computes |Sat(D, u, k)| for a relation-disjoint union
// of hierarchical self-join-free CQ¬s.
func SatCountVectorUCQ(d *Database, u *UCQ) ([]*big.Int, error) {
	return core.SatCountVectorUCQ(d, u)
}

// ShapleyHierarchicalUCQ computes the exact Shapley value for a
// relation-disjoint union of hierarchical self-join-free CQ¬s.
func ShapleyHierarchicalUCQ(d *Database, u *UCQ, f Fact) (*big.Rat, error) {
	return core.ShapleyHierarchicalUCQ(d, u, f)
}

// CriticalSubsets enumerates the witness subsets behind a Shapley value
// (the families Appendix A enumerates by hand), split into false→true and
// true→false directions. Exponential; for explanation on small databases.
func CriticalSubsets(d *Database, q BooleanQuery, f Fact) (posE, negE [][]Fact, err error) {
	return core.CriticalSubsets(d, q, f)
}

// NewProbDatabase returns an empty tuple-independent probabilistic database.
func NewProbDatabase() *ProbDatabase { return probdb.New() }

// LiftedProbabilityUCQ computes P(D ⊨ u) exactly for a relation-disjoint
// union of hierarchical self-join-free CQ¬s.
func LiftedProbabilityUCQ(pd *ProbDatabase, u *UCQ) (*big.Rat, error) {
	return probdb.LiftedProbabilityUCQ(pd, u)
}

// LiftedProbability computes P(D ⊨ q) exactly for a hierarchical
// self-join-free CQ¬.
func LiftedProbability(pd *ProbDatabase, q *CQ) (*big.Rat, error) {
	return probdb.LiftedProbability(pd, q)
}

// ProbEvalWithDeterministic evaluates P(D ⊨ q) with deterministic relations
// per Theorem 4.10.
func ProbEvalWithDeterministic(pd *ProbDatabase, q *CQ, deterministic map[string]bool) (*big.Rat, error) {
	return probdb.EvalWithDeterministic(pd, q, deterministic)
}

// ExpectedCount returns E[#distinct answers of q] over a tuple-independent
// database, by linearity of expectation with exact lifted inference.
func ExpectedCount(pd *ProbDatabase, q *CQ) (*big.Rat, error) {
	return probdb.ExpectedCount(pd, q)
}

// ExpectedSum returns E[Σ of the numeric head variable sumVar over distinct
// answers of q].
func ExpectedSum(pd *ProbDatabase, q *CQ, sumVar string) (*big.Rat, error) {
	return probdb.ExpectedSum(pd, q, sumVar)
}

// CausalEffect computes Salimi et al.'s causal effect of f on q (the §1
// baseline measure): the difference in expected query value between
// assuming f present and absent, with other endogenous facts kept with
// probability 1/2.
func CausalEffect(d *Database, q *CQ, f Fact) (*big.Rat, error) {
	return measures.CausalEffect(d, q, f)
}

// Responsibility computes Meliou et al.'s responsibility of f for q on D:
// 1/(1+|Γ|) for the smallest contingency set Γ making f counterfactual,
// and 0 if none exists.
func Responsibility(d *Database, q *CQ, f Fact) (*big.Rat, error) {
	return measures.Responsibility(d, q, f)
}
