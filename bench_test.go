package repro

import (
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/paperex"
	"repro/internal/probdb"
	"repro/internal/query"
	"repro/internal/relevance"
	"repro/internal/workload"
)

// --- one benchmark per paper artifact (see DESIGN.md's experiment index) ---

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE01RunningExample(b *testing.B)  { benchExperiment(b, "E01") }
func BenchmarkE02Dichotomy(b *testing.B)       { benchExperiment(b, "E02") }
func BenchmarkE03NonHierPath(b *testing.B)     { benchExperiment(b, "E03") }
func BenchmarkE04ExoShap(b *testing.B)         { benchExperiment(b, "E04") }
func BenchmarkE05ExoDichotomy(b *testing.B)    { benchExperiment(b, "E05") }
func BenchmarkE06ProbDB(b *testing.B)          { benchExperiment(b, "E06") }
func BenchmarkE07GapExplicit(b *testing.B)     { benchExperiment(b, "E07") }
func BenchmarkE08GapGeneric(b *testing.B)      { benchExperiment(b, "E08") }
func BenchmarkE09FPRAS(b *testing.B)           { benchExperiment(b, "E09") }
func BenchmarkE10RelevanceHard(b *testing.B)   { benchExperiment(b, "E10") }
func BenchmarkE11SatChain(b *testing.B)        { benchExperiment(b, "E11") }
func BenchmarkE12RelevancePoly(b *testing.B)   { benchExperiment(b, "E12") }
func BenchmarkE13UCQRelevance(b *testing.B)    { benchExperiment(b, "E13") }
func BenchmarkE14ISReduction(b *testing.B)     { benchExperiment(b, "E14") }
func BenchmarkE15ZeroRelevant(b *testing.B)    { benchExperiment(b, "E15") }
func BenchmarkE16NegationDuality(b *testing.B) { benchExperiment(b, "E16") }
func BenchmarkE17Aggregates(b *testing.B)      { benchExperiment(b, "E17") }
func BenchmarkE18SelfJoin(b *testing.B)        { benchExperiment(b, "E18") }
func BenchmarkE19Measures(b *testing.B)        { benchExperiment(b, "E19") }

// --- scaling benchmarks for the polynomial algorithms ---

func universityInstance(students int) *Database {
	return workload.University(workload.UniversityConfig{
		Students: students, Courses: 8, RegPerStudent: 2, TAFraction: 0.4, Seed: 7,
	})
}

func BenchmarkHierarchicalShapley(b *testing.B) {
	q1 := paperex.Q1()
	for _, students := range []int{10, 40, 160} {
		d := universityInstance(students)
		f := d.EndoFacts()[0]
		b.Run(fmt.Sprintf("students=%d/endo=%d", students, d.NumEndo()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ShapleyHierarchical(d, q1, f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShapleyAllBatch compares the all-facts workload under the
// batched engine (shared classification/ExoShap/CntSat tables + worker
// pool) against the naive per-fact loop, asserting byte-identical values.
func BenchmarkShapleyAllBatch(b *testing.B) {
	q1 := paperex.Q1()
	d := universityInstance(40)

	perFactAll := func(b *testing.B) []*ShapleyValue {
		s := &Solver{}
		out := make([]*ShapleyValue, 0, d.NumEndo())
		for _, f := range d.EndoFacts() {
			v, err := s.Shapley(d, q1, f)
			if err != nil {
				b.Fatal(err)
			}
			out = append(out, v)
		}
		return out
	}

	// Sanity: the batch engine must be bit-for-bit equal to the loop.
	want := perFactAll(b)
	s := &Solver{}
	got, err := s.ShapleyAllBatch(d, q1, BatchOptions{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	for i := range want {
		if want[i].Value.RatString() != got[i].Value.RatString() {
			b.Fatalf("batch diverges at %s: %s vs %s", want[i].Fact, got[i].Value.RatString(), want[i].Value.RatString())
		}
	}

	b.Run(fmt.Sprintf("per-fact-loop/endo=%d", d.NumEndo()), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			perFactAll(b)
		}
	})
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("batch/workers=%d/endo=%d", workers, d.NumEndo()), func(b *testing.B) {
			s := &Solver{}
			for i := 0; i < b.N; i++ {
				if _, err := s.ShapleyAllBatch(d, q1, BatchOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShapleyAllBatchExoShap measures the batch win when every
// per-fact computation previously repeated the ExoShap transformation.
func BenchmarkShapleyAllBatchExoShap(b *testing.B) {
	d := paperex.RunningExample()
	q2 := paperex.Q2()
	exo := map[string]bool{"Stud": true, "Course": true}
	b.Run("per-fact-loop", func(b *testing.B) {
		s := &Solver{ExoRelations: exo}
		for i := 0; i < b.N; i++ {
			for _, f := range d.EndoFacts() {
				if _, err := s.Shapley(d, q2, f); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("batch/workers=%d", workers), func(b *testing.B) {
			s := &Solver{ExoRelations: exo}
			for i := 0; i < b.N; i++ {
				if _, err := s.ShapleyAllBatch(d, q2, BatchOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSatCountVector(b *testing.B) {
	q1 := paperex.Q1()
	for _, students := range []int{10, 40, 160} {
		d := universityInstance(students)
		b.Run(fmt.Sprintf("students=%d", students), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SatCountVector(d, q1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: the polynomial counting algorithm vs the exponential
// definitional computation on the same instance (DESIGN.md ablation item).
func BenchmarkAblationCntSatVsBrute(b *testing.B) {
	q1 := paperex.Q1()
	d := workload.University(workload.UniversityConfig{
		Students: 6, Courses: 4, RegPerStudent: 1, TAFraction: 0.5, Seed: 11,
	})
	f := d.EndoFacts()[0]
	b.Run(fmt.Sprintf("cntsat/endo=%d", d.NumEndo()), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ShapleyHierarchical(d, q1, f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("brute/endo=%d", d.NumEndo()), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BruteForceShapley(d, q1, f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation: greedy join planning vs declaration-order joins in the
// homomorphism evaluator.
func BenchmarkAblationJoinOrder(b *testing.B) {
	// Declaration order puts the large Reg relation first; the greedy plan
	// starts from the small filtered relations.
	q := query.MustParse("q() :- Reg(x, y), Stud(x), !TA(x), Course(y, CS)")
	d := universityInstance(120)
	count := func(enum func(*Database, func(query.Binding) bool)) int {
		n := 0
		enum(d, func(query.Binding) bool { n++; return true })
		return n
	}
	want := count(q.ForEachHomomorphism)
	if got := count(q.ForEachHomomorphismOrdered); got != want {
		b.Fatalf("ablation variants disagree: %d vs %d", got, want)
	}
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.ForEachHomomorphism(d, func(query.Binding) bool { return true })
		}
	})
	b.Run("declaration-order", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.ForEachHomomorphismOrdered(d, func(query.Binding) bool { return true })
		}
	})
}

// Ablation: exact polynomial computation vs Monte-Carlo estimation.
func BenchmarkAblationMCVsExact(b *testing.B) {
	q1 := paperex.Q1()
	d := universityInstance(40)
	f := d.EndoFacts()[0]
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ShapleyHierarchical(d, q1, f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mc1000", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			if _, err := core.MonteCarloShapleyN(d, q1, f, 1000, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkExoShapTransform(b *testing.B) {
	d := paperex.RunningExample()
	q2 := paperex.Q2()
	exo := map[string]bool{"Stud": true, "Course": true}
	for i := 0; i < b.N; i++ {
		if _, _, _, err := core.ExoShapTransform(d, q2, exo); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelevancePoly(b *testing.B) {
	q1 := paperex.Q1()
	d := universityInstance(40)
	f := d.EndoFacts()[0]
	for i := 0; i < b.N; i++ {
		if _, err := relevance.IsRelevant(d, q1, f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalQ1(b *testing.B) {
	q1 := paperex.Q1()
	d := universityInstance(160)
	for i := 0; i < b.N; i++ {
		q1.Eval(d)
	}
}

func BenchmarkLiftedProbability(b *testing.B) {
	q1 := paperex.Q1()
	d := universityInstance(40)
	pd := probdb.New()
	for _, f := range d.Facts() {
		if d.IsEndogenous(f) {
			pd.MustAdd(f, big.NewRat(1, 2))
		} else {
			pd.MustAdd(f, big.NewRat(1, 1))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := probdb.LiftedProbability(pd, q1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarloSample(b *testing.B) {
	d := paperex.RunningExample()
	q1 := paperex.Q1()
	f := NewFact("TA", "Adam")
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < b.N; i++ {
		if _, err := core.MonteCarloShapleyN(d, q1, f, 100, rng); err != nil {
			b.Fatal(err)
		}
	}
}
