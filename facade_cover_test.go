package repro

import (
	"math/big"
	"math/rand"
	"testing"
)

// Exercises the remaining facade wrappers end to end so the public surface
// stays wired to the internal implementations.
func TestFacadeCoverage(t *testing.T) {
	d := MustParseDatabase(universityText)
	q := MustParseQuery("q1() :- Stud(x), !TA(x), Reg(x, y)")

	// CriticalSubsets: the Appendix A witness counts.
	pos, neg, err := CriticalSubsets(d, q, NewFact("Reg", "Caroline", "DB"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != 30 || len(neg) != 0 {
		t.Fatalf("witnesses = %d/%d, want 30/0", len(pos), len(neg))
	}

	// Hierarchical single-query and UCQ entry points agree.
	f := NewFact("TA", "Ben")
	a, err := ShapleyHierarchical(d, q, f)
	if err != nil {
		t.Fatal(err)
	}
	u := &UCQ{Disjuncts: []*CQ{q}}
	b, err := ShapleyHierarchicalUCQ(d, u, f)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cmp(b) != 0 {
		t.Fatalf("UCQ facade %s != CQ facade %s", b.RatString(), a.RatString())
	}
	satU, err := SatCountVectorUCQ(d, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(satU) != d.NumEndo()+1 {
		t.Fatalf("UCQ sat vector length %d", len(satU))
	}

	// Brute-force oracle and permutation-free estimate.
	bf, err := BruteForceShapley(d, q, f)
	if err != nil {
		t.Fatal(err)
	}
	if bf.Cmp(a) != 0 {
		t.Fatalf("brute force %s != exact %s", bf.RatString(), a.RatString())
	}
	res, err := MonteCarloShapley(d, q, f, 0.3, 0.2, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples <= 0 {
		t.Fatal("no samples")
	}

	// Relevance wrappers.
	if posRel, err := IsPosRelevant(d, q, NewFact("Reg", "Ben", "OS")); err != nil || !posRel {
		t.Fatalf("IsPosRelevant = %v, %v", posRel, err)
	}
	if negRel, err := IsNegRelevant(d, q, NewFact("TA", "Ben")); err != nil || !negRel {
		t.Fatalf("IsNegRelevant = %v, %v", negRel, err)
	}

	// Measures.
	ce, err := CausalEffect(d, q, NewFact("TA", "David"))
	if err != nil || ce.Sign() != 0 {
		t.Fatalf("CausalEffect(TA(David)) = %v, %v", ce, err)
	}
	rho, err := Responsibility(d, q, NewFact("TA", "David"))
	if err != nil || rho.Sign() != 0 {
		t.Fatalf("Responsibility(TA(David)) = %v, %v", rho, err)
	}

	// Probabilistic wrappers.
	pd := NewProbDatabase()
	pd.MustAdd(NewFact("R", "a"), big.NewRat(1, 2))
	pd.MustAdd(NewFact("U", "a", "b"), big.NewRat(1, 4))
	pu := MustParseUCQ("qa() :- R(x) | qb() :- U(x, y)")
	p, err := LiftedProbabilityUCQ(pd, pu)
	if err != nil {
		t.Fatal(err)
	}
	// 1 − (1/2)(3/4) = 5/8.
	if p.Cmp(big.NewRat(5, 8)) != 0 {
		t.Fatalf("P(union) = %s, want 5/8", p.RatString())
	}
	cq := MustParseQuery("qc(x) :- R(x)")
	ec, err := ExpectedCount(pd, cq)
	if err != nil || ec.Cmp(big.NewRat(1, 2)) != 0 {
		t.Fatalf("ExpectedCount = %v, %v", ec, err)
	}
	pd2 := NewProbDatabase()
	pd2.MustAdd(NewFact("P", "a", "10"), big.NewRat(1, 2))
	es, err := ExpectedSum(pd2, MustParseQuery("qs(x, r) :- P(x, r)"), "r")
	if err != nil || es.Cmp(big.NewRat(5, 1)) != 0 {
		t.Fatalf("ExpectedSum = %v, %v", es, err)
	}
	det, err := ProbEvalWithDeterministic(pd, MustParseQuery("qd() :- R(x)"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if det.Cmp(big.NewRat(1, 2)) != 0 {
		t.Fatalf("ProbEvalWithDeterministic = %s, want 1/2", det.RatString())
	}

	// Parsers.
	if _, err := ParseFact("R(a,b"); err == nil {
		t.Fatal("bad fact accepted")
	}
	if _, err := ParseUCQ(""); err == nil {
		t.Fatal("empty UCQ accepted")
	}
	if _, err := ParseQuery("broken"); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := ParseDatabase("junk line"); err == nil {
		t.Fatal("bad database accepted")
	}
	if _, err := HoeffdingSamples(2, 0.5); err == nil {
		t.Fatal("bad epsilon accepted")
	}
	if _, err := MonteCarloShapleyN(d, q, NewFact("TA", "Ben"), 10, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}

	// Transform facade (already covered elsewhere; exercise error path).
	if _, _, _, err := ExoShapTransform(d, MustParseQuery("s() :- Reg(x, y), !Reg(y, x)"), nil); err == nil {
		t.Fatal("self-join accepted by ExoShapTransform")
	}
}

func TestFacadeMustParsePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"database": func() { MustParseDatabase("garbage") },
		"query":    func() { MustParseQuery("garbage") },
		"ucq":      func() { MustParseUCQ("") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MustParse %s should panic", name)
				}
			}()
			fn()
		}()
	}
}
