package repro_test

import (
	"context"
	"fmt"
	"math/big"

	"repro"
)

// The paper's running example: exact Shapley values for q1 on Figure 1's
// database, reproducing Example 2.3.
func ExampleSolver_ShapleyAll() {
	d := repro.MustParseDatabase(`
exo  Stud(Adam)
exo  Stud(Caroline)
endo TA(Adam)
endo Reg(Adam, OS)
endo Reg(Caroline, DB)
`)
	q := repro.MustParseQuery("q1() :- Stud(x), !TA(x), Reg(x, y)")
	solver := &repro.Solver{}
	values, err := solver.ShapleyAll(d, q)
	if err != nil {
		panic(err)
	}
	for _, v := range values {
		fmt.Printf("%s %s\n", v.Fact, v.Value.RatString())
	}
	// Output:
	// TA(Adam) -1/6
	// Reg(Adam,OS) 1/3
	// Reg(Caroline,DB) 5/6
}

// Classification according to the paper's dichotomies: q2 is FP#P-hard in
// general but becomes polynomial once Stud and Course are declared
// exogenous (Theorem 4.3).
func ExampleClassify() {
	q2 := repro.MustParseQuery("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, CS)")
	plain := repro.Classify(q2, nil)
	declared := repro.Classify(q2, map[string]bool{"Stud": true, "Course": true})
	fmt.Println(plain.Tractable, declared.Tractable)
	// Output:
	// false true
}

// Relevance (Definition 5.2) for a polarity-consistent query is decidable
// in polynomial time and coincides with the Shapley value being nonzero.
func ExampleIsRelevant() {
	d := repro.MustParseDatabase(`
exo  Stud(Ben)
endo TA(Ben)
`)
	q := repro.MustParseQuery("q() :- Stud(x), !TA(x), Reg(x, y)")
	rel, err := repro.IsRelevant(d, q, repro.NewFact("TA", "Ben"))
	if err != nil {
		panic(err)
	}
	fmt.Println(rel)
	// Output:
	// false
}

// Exact probabilistic query evaluation over a tuple-independent database
// (§4.3): P(∃x R(x) ∧ ¬S(x)) with independent tuples.
func ExampleLiftedProbability() {
	pd := repro.NewProbDatabase()
	pd.MustAdd(repro.NewFact("R", "a"), ratio(1, 2))
	pd.MustAdd(repro.NewFact("S", "a"), ratio(1, 4))
	q := repro.MustParseQuery("q() :- R(x), !S(x)")
	p, err := repro.LiftedProbability(pd, q)
	if err != nil {
		panic(err)
	}
	fmt.Println(p.RatString())
	// Output:
	// 3/8
}

func ratio(a, b int64) *big.Rat { return big.NewRat(a, b) }

// The v2 compute surface: prepare a versioned Plan once, query it, evolve
// the database with a delta — only the touched DP buckets recompute — and
// query again, all under a cancellable context.
func ExamplePlan_Apply() {
	d := repro.MustParseDatabase(`
exo  Stud(Adam)
exo  Stud(Caroline)
endo TA(Adam)
endo Reg(Adam, OS)
endo Reg(Caroline, DB)
`)
	q := repro.MustParseQuery("q1() :- Stud(x), !TA(x), Reg(x, y)")
	ctx := context.Background()
	plan, err := repro.NewEngine().Prepare(ctx, d, q)
	if err != nil {
		panic(err)
	}
	v, err := plan.Shapley(ctx, repro.NewFact("Reg", "Caroline", "DB"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("v%d %s %s\n", plan.Version(), v.Fact, v.Value.RatString())

	// Caroline becomes a TA: her bucket is recomputed, Adam's is reused.
	if _, err := plan.Apply(ctx, repro.Delta{AddEndo: []repro.Fact{repro.NewFact("TA", "Caroline")}}); err != nil {
		panic(err)
	}
	v, err = plan.Shapley(ctx, repro.NewFact("Reg", "Caroline", "DB"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("v%d %s %s\n", plan.Version(), v.Fact, v.Value.RatString())
	// Output:
	// v1 Reg(Caroline,DB) 5/6
	// v2 Reg(Caroline,DB) 5/12
}
